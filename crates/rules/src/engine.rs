//! The inference engine: working memory, agenda, match–resolve–act loop.
//!
//! Matching is incremental and indexed (a "Rete-lite"):
//!
//! * an **alpha layer** buckets working memory per distinct
//!   (fact type, literal constraints) pattern signature, so joins scan
//!   only candidate facts that already passed every constant test;
//! * the **conflict set** is maintained persistently: asserting or
//!   retracting a fact only (re)computes activations for rules whose
//!   patterns reference the affected alpha memories — rules over other
//!   fact types are untouched, and firing a rule whose action leaves
//!   working memory unchanged costs one ordered-set pop;
//! * **negated patterns** are tracked per rule: an assert into a
//!   negatively-referenced alpha memory can *deactivate* pending matches
//!   and a retract can *activate* them, so those rules are recomputed
//!   from their (small) alpha candidate sets.
//!
//! The naive quadratic matcher this replaces lives on as
//! [`crate::reference::ReferenceEngine`], used by differential tests and
//! the `bench_rules` ablation.

use crate::condition::{Operand, Pattern};
use crate::fact::{Fact, FactHandle};
use crate::rule::{Action, RhsContext, RhsStatement, Rule};
use crate::value::Value;
use crate::{Result, RuleError};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

/// A structured conclusion emitted by a rule — the engine's primary
/// output for the analysis layer. Where the paper's rules print their
/// findings ("Event X has a higher than average stall / cycle rate"),
/// this engine additionally captures them as data so downstream
/// consumers (recommendation rendering, compiler feedback) need not
/// parse text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Category tag, e.g. `"load-imbalance"`, `"memory-locality"`.
    pub category: String,
    /// Human-readable explanation.
    pub message: String,
    /// Severity in `[0, 1]` when the rule quantified it.
    pub severity: Option<f64>,
    /// Suggested remedy, if the rule proposes one.
    pub recommendation: Option<String>,
    /// Name of the rule that fired.
    pub rule: String,
    /// Variable bindings at firing time, so consumers can recover which
    /// event/trial the diagnosis is about without parsing the message.
    #[serde(default)]
    pub bindings: BTreeMap<String, Value>,
}

/// Record of one rule firing, for explanation and audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiringRecord {
    /// Rule that fired.
    pub rule: String,
    /// Handles of the matched facts, in pattern order.
    pub matched: Vec<FactHandle>,
    /// Variable environment at firing time.
    pub bindings: BTreeMap<String, Value>,
}

/// The output of an engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Lines printed by rule actions, in firing order.
    pub printed: Vec<String>,
    /// Structured diagnoses, in firing order.
    pub diagnoses: Vec<Diagnosis>,
    /// One record per firing, in order.
    pub firings: Vec<FiringRecord>,
    /// Match–act cycles executed.
    pub cycles: usize,
}

impl RunReport {
    /// Diagnoses in one category.
    pub fn diagnoses_in(&self, category: &str) -> Vec<&Diagnosis> {
        self.diagnoses
            .iter()
            .filter(|d| d.category == category)
            .collect()
    }

    /// Whether any rule with the given name fired.
    pub fn fired(&self, rule: &str) -> bool {
        self.firings.iter().any(|f| f.rule == rule)
    }

    /// Merges another report produced by a later run on the same engine.
    pub fn absorb(&mut self, other: RunReport) {
        self.printed.extend(other.printed);
        self.diagnoses.extend(other.diagnoses);
        self.firings.extend(other.firings);
        self.cycles += other.cycles;
    }
}

/// One activation candidate: the matched fact tuple and its bindings.
type Activation = (Vec<FactHandle>, BTreeMap<String, Value>);

/// Agenda ordering key: highest salience first, then rule definition
/// order, then fact recency (newest tuple first). A `BTreeSet` of these
/// keys iterates best-first.
type AgendaKey = (Reverse<i32>, usize, Reverse<Vec<FactHandle>>);

/// One alpha memory: the set of fact handles passing a pattern's
/// environment-independent tests (fact type + literal constraints).
/// Patterns with identical signatures share a memory.
struct AlphaMemory {
    /// The shared alpha test: `filter.fact_type` plus only the literal
    /// constraints of the patterns using this memory.
    filter: Pattern,
    /// Facts currently passing the test, in handle (recency) order.
    handles: BTreeSet<FactHandle>,
    /// `(rule index, pattern position)` pairs reading this memory.
    users: Vec<(usize, usize)>,
}

/// A forward-chaining rule engine.
pub struct Engine {
    rules: Vec<Rule>,
    wm: BTreeMap<FactHandle, Fact>,
    next_handle: u64,
    /// Refraction memory: activations that already fired.
    fired: BTreeSet<(usize, Vec<FactHandle>)>,
    /// Safety bound on total firings per `run`.
    cycle_limit: usize,
    /// Alpha layer: one memory per distinct pattern signature.
    alphas: Vec<AlphaMemory>,
    /// Fact type → indices into `alphas`, for assert/retract routing.
    type_alphas: BTreeMap<String, Vec<usize>>,
    /// Per rule, per pattern (in order): index into `alphas`.
    rule_alpha: Vec<Vec<usize>>,
    /// Per rule: current unfired activations (the conflict set), keyed
    /// by matched-handle tuple.
    conflict: Vec<BTreeMap<Vec<FactHandle>, BTreeMap<String, Value>>>,
    /// Salience/recency-ordered view over every conflict set.
    agenda: BTreeSet<AgendaKey>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Creates an empty engine with the default cycle limit.
    pub fn new() -> Self {
        Engine {
            rules: Vec::new(),
            wm: BTreeMap::new(),
            next_handle: 0,
            fired: BTreeSet::new(),
            cycle_limit: 100_000,
            alphas: Vec::new(),
            type_alphas: BTreeMap::new(),
            rule_alpha: Vec::new(),
            conflict: Vec::new(),
            agenda: BTreeSet::new(),
        }
    }

    /// Overrides the firing budget (guards against rules that assert
    /// facts in an unbounded loop).
    pub fn with_cycle_limit(mut self, limit: usize) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Adds one rule. Duplicate names are rejected so a knowledge base
    /// cannot silently shadow itself.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(RuleError::DuplicateRule(rule.name));
        }
        let idx = self.rules.len();
        let mut pattern_alphas = Vec::with_capacity(rule.patterns.len());
        for (pos, p) in rule.patterns.iter().enumerate() {
            let a = self.alpha_for(p);
            self.alphas[a].users.push((idx, pos));
            pattern_alphas.push(a);
        }
        self.rule_alpha.push(pattern_alphas);
        self.rules.push(rule);
        self.conflict.push(BTreeMap::new());
        self.recompute_rule(idx);
        Ok(())
    }

    /// Finds or creates the alpha memory for a pattern's signature. A
    /// newly-created memory is populated from current working memory, so
    /// rules may be added after facts.
    fn alpha_for(&mut self, pattern: &Pattern) -> usize {
        let literals: Vec<_> = pattern
            .constraints
            .iter()
            .filter(|c| matches!(c.rhs, Operand::Literal(_)))
            .cloned()
            .collect();
        if let Some(a) = self.alphas.iter().position(|a| {
            a.filter.fact_type == pattern.fact_type && a.filter.constraints == literals
        }) {
            return a;
        }
        let mut filter = Pattern::new(pattern.fact_type.clone());
        filter.constraints = literals;
        let handles = self
            .wm
            .iter()
            .filter(|(_, f)| filter.passes_alpha(f))
            .map(|(h, _)| *h)
            .collect();
        let a = self.alphas.len();
        self.alphas.push(AlphaMemory {
            filter,
            handles,
            users: Vec::new(),
        });
        self.type_alphas
            .entry(pattern.fact_type.clone())
            .or_default()
            .push(a);
        a
    }

    /// Adds many rules; stops at the first duplicate.
    pub fn add_rules(&mut self, rules: Vec<Rule>) -> Result<()> {
        for r in rules {
            self.add_rule(r)?;
        }
        Ok(())
    }

    /// Asserts a fact into working memory, returning its handle. The
    /// conflict set is updated incrementally: only rules whose patterns
    /// read an alpha memory that accepted the fact are reconsidered.
    pub fn assert_fact(&mut self, fact: Fact) -> FactHandle {
        let h = FactHandle(self.next_handle);
        self.next_handle += 1;
        let fact_type = fact.fact_type.clone();
        self.wm.insert(h, fact);

        // Full recompute for rules where the fact feeds a negated
        // pattern (it may *deactivate* pending matches); a cheap delta
        // join for purely positive uses (it can only add activations).
        let mut full: BTreeSet<usize> = BTreeSet::new();
        let mut deltas: Vec<(usize, usize)> = Vec::new();
        if let Some(alpha_ids) = self.type_alphas.get(&fact_type) {
            for &a in alpha_ids.clone().iter() {
                if !self.alphas[a].filter.passes_alpha(&self.wm[&h]) {
                    continue;
                }
                self.alphas[a].handles.insert(h);
                for &(r, pos) in &self.alphas[a].users {
                    if self.rules[r].patterns[pos].negated {
                        full.insert(r);
                    } else {
                        deltas.push((r, pos));
                    }
                }
            }
        }
        for &r in &full {
            self.recompute_rule(r);
        }
        for (r, pos) in deltas {
            if !full.contains(&r) {
                self.delta_add(r, pos, h);
            }
        }
        h
    }

    /// Retracts a fact; returns it if it was present. Activations whose
    /// tuple contains the fact are dropped from the agenda; rules that
    /// test the fact's type negatively are recomputed (a retract can
    /// *activate* previously-blocked matches). Refraction entries naming
    /// the dead handle are purged — handles are never reused, so those
    /// tuples can never match again and would only leak memory.
    pub fn retract(&mut self, handle: FactHandle) -> Option<Fact> {
        let fact = self.wm.remove(&handle)?;
        let mut full: BTreeSet<usize> = BTreeSet::new();
        let mut positive: BTreeSet<usize> = BTreeSet::new();
        if let Some(alpha_ids) = self.type_alphas.get(&fact.fact_type) {
            for &a in alpha_ids.clone().iter() {
                if !self.alphas[a].handles.remove(&handle) {
                    continue;
                }
                for &(r, pos) in &self.alphas[a].users {
                    if self.rules[r].patterns[pos].negated {
                        full.insert(r);
                    } else {
                        positive.insert(r);
                    }
                }
            }
        }
        self.fired.retain(|(_, hs)| !hs.contains(&handle));
        for &r in &full {
            self.recompute_rule(r);
        }
        for &r in &positive {
            if !full.contains(&r) {
                self.remove_activations_containing(r, handle);
            }
        }
        Some(fact)
    }

    /// Read access to working memory, in handle order.
    pub fn facts(&self) -> impl Iterator<Item = (FactHandle, &Fact)> {
        self.wm.iter().map(|(h, f)| (*h, f))
    }

    /// Number of facts in working memory.
    pub fn fact_count(&self) -> usize {
        self.wm.len()
    }

    /// Number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Clears facts, the agenda and refraction memory, keeping the
    /// rules. The handle counter is *not* reset: handles held from
    /// before the reset stay dead forever instead of silently aliasing
    /// facts asserted afterwards.
    pub fn reset(&mut self) {
        self.wm.clear();
        self.fired.clear();
        self.agenda.clear();
        for alpha in &mut self.alphas {
            alpha.handles.clear();
        }
        for set in &mut self.conflict {
            set.clear();
        }
    }

    /// Number of refraction-memory entries currently retained. Exposed
    /// so long-lived callers (parameter sweeps) can check that retracted
    /// facts do not pin refraction state forever.
    pub fn refraction_len(&self) -> usize {
        self.fired.len()
    }

    /// Finds every activation of `rule` (index `idx`) against current
    /// working memory: all fact tuples matching the pattern conjunction
    /// with consistent bindings. Each pattern scans only its alpha
    /// memory, not all of working memory.
    fn activations_of(&self, idx: usize) -> Vec<Activation> {
        self.join(idx, None)
    }

    /// The indexed join. With `pin = Some((pos, h))`, pattern `pos` is
    /// restricted to the single fact `h` — the delta join used when `h`
    /// was just asserted, producing exactly the activations that involve
    /// it at that position.
    fn join(&self, idx: usize, pin: Option<(usize, FactHandle)>) -> Vec<Activation> {
        let rule = &self.rules[idx];
        let mut partial: Vec<Activation> = vec![(Vec::new(), BTreeMap::new())];
        for (pos, pattern) in rule.patterns.iter().enumerate() {
            let alpha = &self.alphas[self.rule_alpha[idx][pos]];
            let mut next = Vec::new();
            for (handles, env) in &partial {
                if pattern.negated {
                    // Absence test: keep the partial match only if no
                    // candidate satisfies the pattern under these
                    // bindings.
                    let blocked = alpha
                        .handles
                        .iter()
                        .any(|h| pattern.matches_given_alpha(&self.wm[h], env).is_some());
                    if !blocked {
                        next.push((handles.clone(), env.clone()));
                    }
                    continue;
                }
                let pinned;
                let candidates: &BTreeSet<FactHandle> = match pin {
                    Some((p, h)) if p == pos => {
                        pinned = BTreeSet::from([h]);
                        &pinned
                    }
                    _ => &alpha.handles,
                };
                for h in candidates {
                    // A fact participates at most once per activation: the
                    // paper's nested-loop rule matches two *different*
                    // events with the same pattern shape.
                    if handles.contains(h) {
                        continue;
                    }
                    if let Some(new_env) = pattern.matches_given_alpha(&self.wm[h], env) {
                        let mut hs = handles.clone();
                        hs.push(*h);
                        next.push((hs, new_env));
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        partial
    }

    /// Rebuilds rule `idx`'s conflict set from scratch (still via the
    /// alpha indexes) and reconciles the agenda. Used when a change may
    /// both add and remove activations — negated patterns, rule loading.
    fn recompute_rule(&mut self, idx: usize) {
        let salience = self.rules[idx].salience;
        let old = std::mem::take(&mut self.conflict[idx]);
        for handles in old.into_keys() {
            self.agenda
                .remove(&(Reverse(salience), idx, Reverse(handles)));
        }
        for (handles, env) in self.activations_of(idx) {
            self.insert_activation(idx, handles, env);
        }
    }

    /// Adds to rule `idx` every activation involving just-asserted fact
    /// `h` at pattern position `pos`. Purely additive — existing
    /// activations of a rule without negated patterns cannot be
    /// invalidated by an assert.
    fn delta_add(&mut self, idx: usize, pos: usize, h: FactHandle) {
        for (handles, env) in self.join(idx, Some((pos, h))) {
            self.insert_activation(idx, handles, env);
        }
    }

    /// Inserts one activation into the conflict set and agenda unless it
    /// already fired (refraction).
    fn insert_activation(
        &mut self,
        idx: usize,
        handles: Vec<FactHandle>,
        env: BTreeMap<String, Value>,
    ) {
        if self.fired.contains(&(idx, handles.clone())) {
            return;
        }
        let salience = self.rules[idx].salience;
        self.agenda
            .insert((Reverse(salience), idx, Reverse(handles.clone())));
        self.conflict[idx].insert(handles, env);
    }

    /// Drops every pending activation of rule `idx` whose matched tuple
    /// contains `h` (used when `h` is retracted).
    fn remove_activations_containing(&mut self, idx: usize, h: FactHandle) {
        let salience = self.rules[idx].salience;
        let dead: Vec<Vec<FactHandle>> = self.conflict[idx]
            .keys()
            .filter(|hs| hs.contains(&h))
            .cloned()
            .collect();
        for hs in dead {
            self.conflict[idx].remove(&hs);
            self.agenda.remove(&(Reverse(salience), idx, Reverse(hs)));
        }
    }

    /// Runs the match–resolve–act cycle to quiescence. If the cycle
    /// limit is hit, the partial report is carried inside the error.
    pub fn run(&mut self) -> Result<RunReport> {
        let mut report = RunReport::default();
        while let Some((Reverse(salience), idx, Reverse(handles))) = self.agenda.first().cloned() {
            if report.firings.len() >= self.cycle_limit {
                return Err(RuleError::CycleLimit {
                    limit: self.cycle_limit,
                    report: Box::new(report),
                });
            }
            self.agenda
                .remove(&(Reverse(salience), idx, Reverse(handles.clone())));
            let env = self.conflict[idx]
                .remove(&handles)
                .expect("agenda and conflict set in sync");
            self.fired.insert((idx, handles.clone()));

            let matched: Vec<(FactHandle, Fact)> = handles
                .iter()
                .map(|h| (*h, self.wm.get(h).expect("matched fact present").clone()))
                .collect();
            let rule_name = self.rules[idx].name.clone();
            let mut ctx = RhsContext::new(&env, &matched, &rule_name);

            // Matched-fact positions skip negated patterns (they match
            // nothing), so the retract lookup must too.
            let fact_bindings: Vec<Option<String>> = self.rules[idx]
                .patterns
                .iter()
                .filter(|p| !p.negated)
                .map(|p| p.fact_binding.clone())
                .collect();
            match &self.rules[idx].action {
                Action::Native(f) => f(&mut ctx),
                Action::Interpreted(stmts) => {
                    let stmts = stmts.clone();
                    Self::execute_interpreted(&mut ctx, &stmts, &rule_name, &fact_bindings)?;
                }
            }

            let printed = std::mem::take(&mut ctx.printed);
            let diagnoses = std::mem::take(&mut ctx.diagnoses);
            let asserts = std::mem::take(&mut ctx.asserts);
            let retracts = std::mem::take(&mut ctx.retracts);
            drop(ctx);

            report.firings.push(FiringRecord {
                rule: rule_name,
                matched: handles,
                bindings: env,
            });
            report.printed.extend(printed);
            report.diagnoses.extend(diagnoses);

            // Apply buffered commands through the incremental paths so
            // the agenda tracks every working-memory change.
            for h in retracts {
                self.retract(h);
            }
            for f in asserts {
                self.assert_fact(f);
            }
            report.cycles += 1;
        }
        Ok(report)
    }

    /// Executes interpreted RHS statements into the context. Shared with
    /// [`crate::reference::ReferenceEngine`] so both engines interpret
    /// rule actions identically.
    pub(crate) fn execute_interpreted(
        ctx: &mut RhsContext,
        statements: &[RhsStatement],
        rule_name: &str,
        fact_bindings: &[Option<String>],
    ) -> Result<()> {
        let unbound = |variable: &str| RuleError::UnboundVariable {
            rule: rule_name.to_string(),
            variable: variable.to_string(),
        };
        let eval = |expr: &crate::rule::RhsExpr, ctx: &RhsContext| -> Result<Value> {
            expr.eval(ctx.env).ok_or_else(|| {
                let mut vars = Vec::new();
                expr.variables(&mut vars);
                let missing = vars
                    .into_iter()
                    .find(|v| !ctx.env.contains_key(v))
                    .unwrap_or_default();
                unbound(&missing)
            })
        };
        for stmt in statements {
            match stmt {
                RhsStatement::Print(parts) => {
                    let mut line = String::new();
                    for p in parts {
                        line.push_str(&eval(p, ctx)?.to_string());
                    }
                    ctx.print(line);
                }
                RhsStatement::Assert { fact_type, fields } => {
                    let mut fact = Fact::new(fact_type.clone());
                    for (name, expr) in fields {
                        let v = eval(expr, ctx)?;
                        fact.set(name, v);
                    }
                    ctx.assert_fact(fact);
                }
                RhsStatement::Retract(var) => {
                    // The variable names a fact binding: find the pattern
                    // that bound it and retract the corresponding fact.
                    let handle = fact_bindings
                        .iter()
                        .position(|name| name.as_deref() == Some(var.as_str()))
                        .and_then(|i| ctx.matched.get(i))
                        .map(|(h, _)| *h);
                    match handle {
                        Some(h) => ctx.retract(h),
                        None => return Err(unbound(var)),
                    }
                }
                RhsStatement::Diagnose {
                    category,
                    message,
                    severity,
                    recommendation,
                } => {
                    let cat = eval(category, ctx)?.to_string();
                    let msg = eval(message, ctx)?.to_string();
                    let sev = match severity {
                        Some(e) => eval(e, ctx)?.as_num(),
                        None => None,
                    };
                    let rec = match recommendation {
                        Some(e) => Some(eval(e, ctx)?.to_string()),
                        None => None,
                    };
                    let rule = ctx.rule_name.to_string();
                    // Attach the firing environment explicitly so the
                    // documented contract — consumers can recover which
                    // event/trial the diagnosis is about — holds for
                    // interpreted rules exactly as for native actions.
                    let bindings = ctx.env.clone();
                    ctx.diagnose(Diagnosis {
                        category: cat,
                        message: msg,
                        severity: sev,
                        recommendation: rec,
                        rule,
                        bindings,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Comparator, Pattern};
    use crate::rule::Rule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn high_severity_rule() -> Rule {
        Rule::builder("high severity")
            .when(
                Pattern::new("MeanEventFact")
                    .constrain("severity", Comparator::Gt, 0.1)
                    .bind("e", "eventName")
                    .bind("s", "severity"),
            )
            .then(|ctx| {
                let e = ctx.var("e").unwrap().to_string();
                ctx.print(format!("severe: {e}"));
            })
    }

    #[test]
    fn single_rule_fires_per_matching_fact() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.05)
                .with("eventName", "b"),
        );
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.2)
                .with("eventName", "c"),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.firings.len(), 2);
        assert!(report.printed.contains(&"severe: a".to_string()));
        assert!(report.printed.contains(&"severe: c".to_string()));
    }

    #[test]
    fn refraction_prevents_refiring_on_second_run() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        let first = engine.run().unwrap();
        assert_eq!(first.firings.len(), 1);
        let second = engine.run().unwrap();
        assert_eq!(second.firings.len(), 0);
        // A new equal fact is a new activation.
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        let third = engine.run().unwrap();
        assert_eq!(third.firings.len(), 1);
    }

    #[test]
    fn salience_orders_firing() {
        let order = Arc::new(parking());
        fn parking() -> std::sync::Mutex<Vec<&'static str>> {
            std::sync::Mutex::new(Vec::new())
        }
        let o1 = order.clone();
        let o2 = order.clone();
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("low")
                    .salience(1)
                    .when(Pattern::new("T"))
                    .then(move |_| o1.lock().unwrap().push("low")),
            )
            .unwrap();
        engine
            .add_rule(
                Rule::builder("high")
                    .salience(10)
                    .when(Pattern::new("T"))
                    .then(move |_| o2.lock().unwrap().push("high")),
            )
            .unwrap();
        engine.assert_fact(Fact::new("T"));
        engine.run().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["high", "low"]);
    }

    #[test]
    fn chaining_asserted_facts_trigger_other_rules() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("producer")
                    .when(Pattern::new("Input").bind("v", "value"))
                    .then(|ctx| {
                        let v = ctx.var("v").cloned().unwrap();
                        ctx.assert_fact(Fact::new("Derived").with("value", v));
                    }),
            )
            .unwrap();
        engine
            .add_rule(
                Rule::builder("consumer")
                    .when(Pattern::new("Derived").bind("v", "value"))
                    .then(|ctx| {
                        let v = ctx.var("v").unwrap().to_string();
                        ctx.print(format!("derived {v}"));
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Input").with("value", 7.0));
        let report = engine.run().unwrap();
        assert!(report.fired("producer"));
        assert!(report.fired("consumer"));
        assert_eq!(report.printed, vec!["derived 7"]);
    }

    #[test]
    fn join_across_patterns_with_binding() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("nested imbalance")
                    .when(
                        Pattern::new("Region")
                            .constrain("imbalanced", Comparator::Eq, true)
                            .bind("outer", "name"),
                    )
                    .when(
                        Pattern::new("Region")
                            .constrain("imbalanced", Comparator::Eq, true)
                            .constrain_var("parent", Comparator::Eq, "outer")
                            .bind("inner", "name"),
                    )
                    .then(|ctx| {
                        let o = ctx.var("outer").unwrap().to_string();
                        let i = ctx.var("inner").unwrap().to_string();
                        ctx.print(format!("{i} nested in {o}"));
                    }),
            )
            .unwrap();
        engine.assert_fact(
            Fact::new("Region")
                .with("name", "outer_loop")
                .with("parent", "main")
                .with("imbalanced", true),
        );
        engine.assert_fact(
            Fact::new("Region")
                .with("name", "inner_loop")
                .with("parent", "outer_loop")
                .with("imbalanced", true),
        );
        engine.assert_fact(
            Fact::new("Region")
                .with("name", "unrelated")
                .with("parent", "main")
                .with("imbalanced", false),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["inner_loop nested in outer_loop"]);
    }

    #[test]
    fn retraction_removes_fact_from_memory() {
        let mut engine = Engine::new();
        let h = engine.assert_fact(Fact::new("T").with("x", 1.0));
        assert_eq!(engine.fact_count(), 1);
        let f = engine.retract(h).unwrap();
        assert_eq!(f.get_num("x"), Some(1.0));
        assert_eq!(engine.fact_count(), 0);
        assert!(engine.retract(h).is_none());
    }

    #[test]
    fn native_retract_during_firing() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("consume")
                    .when(Pattern::new("Token").bind_fact("t"))
                    .then(|ctx| {
                        let (h, _) = ctx.matched[0];
                        ctx.retract(h);
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Token"));
        engine.run().unwrap();
        assert_eq!(engine.fact_count(), 0);
    }

    #[test]
    fn cycle_limit_stops_runaway_rules() {
        let mut engine = Engine::new().with_cycle_limit(25);
        engine
            .add_rule(
                Rule::builder("runaway")
                    .when(Pattern::new("Seed").bind("n", "n"))
                    .then(|ctx| {
                        // Asserts a fresh Seed each firing: never settles.
                        let n = ctx.var("n").and_then(Value::as_num).unwrap_or(0.0);
                        ctx.assert_fact(Fact::new("Seed").with("n", n + 1.0));
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Seed").with("n", 0.0));
        match engine.run() {
            Err(RuleError::CycleLimit { limit, report }) => {
                assert_eq!(limit, 25);
                // The partial report survives the limit: every firing up
                // to the budget is recorded, not discarded.
                assert_eq!(report.firings.len(), 25);
                assert_eq!(report.cycles, 25);
            }
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }

    #[test]
    fn cycle_limit_error_carries_diagnoses() {
        let mut engine = Engine::new().with_cycle_limit(10);
        engine
            .add_rule(
                Rule::builder("diagnosing runaway")
                    .when(Pattern::new("Seed").bind("n", "n"))
                    .then(|ctx| {
                        let n = ctx.var("n").and_then(Value::as_num).unwrap_or(0.0);
                        ctx.diagnose(Diagnosis {
                            category: "loop".into(),
                            message: format!("iteration {n}"),
                            severity: None,
                            recommendation: None,
                            rule: ctx.rule_name.to_string(),
                            bindings: BTreeMap::new(),
                        });
                        ctx.assert_fact(Fact::new("Seed").with("n", n + 1.0));
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Seed").with("n", 0.0));
        let Err(RuleError::CycleLimit { report, .. }) = engine.run() else {
            panic!("expected cycle limit");
        };
        assert_eq!(report.diagnoses.len(), 10);
        assert_eq!(report.diagnoses[0].message, "iteration 0");
        assert_eq!(report.diagnoses[9].message, "iteration 9");
    }

    #[test]
    fn handles_stay_monotonic_across_reset() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        let stale = engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.9)
                .with("eventName", "old"),
        );
        engine.reset();
        let fresh = engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.9)
                .with("eventName", "new"),
        );
        assert_ne!(stale, fresh, "handle counter must not restart");
        // A stale handle held across reset is dead, not an alias: using
        // it must not retract the new fact.
        assert!(engine.retract(stale).is_none());
        assert_eq!(engine.fact_count(), 1);
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["severe: new"]);
    }

    #[test]
    fn retract_purges_refraction_entries() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        // A long-lived engine cycling facts through working memory must
        // not accumulate refraction entries for dead handles.
        for i in 0..50 {
            let h = engine.assert_fact(
                Fact::new("MeanEventFact")
                    .with("severity", 0.9)
                    .with("eventName", format!("e{i}")),
            );
            let report = engine.run().unwrap();
            assert_eq!(report.firings.len(), 1);
            assert_eq!(engine.refraction_len(), 1);
            engine.retract(h);
            assert_eq!(engine.refraction_len(), 0, "stale entry kept after retract");
        }
    }

    #[test]
    fn interpreted_diagnose_carries_bindings() {
        let src = r#"
rule "hot"
when
    MeanEventFact( severity > 0.1, e : eventName, v : severity )
then
    diagnose("hotspot", "region " + e + " is hot", v);
end
"#;
        let mut engine = Engine::new();
        engine.add_rules(crate::drl::parse(src).unwrap()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "pc"),
        );
        let report = engine.run().unwrap();
        let d = &report.diagnoses[0];
        assert_eq!(d.bindings.get("e"), Some(&Value::from("pc")));
        assert_eq!(d.bindings.get("v"), Some(&Value::from(0.5)));
    }

    #[test]
    fn rules_added_after_facts_see_existing_memory() {
        // The alpha memories for a late-loaded rule must be populated
        // from facts asserted before the rule existed.
        let mut engine = Engine::new();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.7)
                .with("eventName", "early"),
        );
        engine.add_rule(high_severity_rule()).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["severe: early"]);
    }

    #[test]
    fn assert_deactivates_pending_negated_match() {
        // An assert into a negatively-referenced alpha memory must
        // remove the pending activation before it fires.
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("quiet")
                    .when(Pattern::new("Probe"))
                    .when(Pattern::new("Noise").negate())
                    .then(|ctx| ctx.print("quiet")),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Probe"));
        // Pending activation exists now; asserting Noise deactivates it.
        engine.assert_fact(Fact::new("Noise"));
        let report = engine.run().unwrap();
        assert!(report.printed.is_empty());
    }

    #[test]
    fn duplicate_rule_name_rejected() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        assert!(matches!(
            engine.add_rule(high_severity_rule()),
            Err(RuleError::DuplicateRule(_))
        ));
    }

    #[test]
    fn reset_clears_memory_but_keeps_rules() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.9)
                .with("eventName", "x"),
        );
        engine.run().unwrap();
        engine.reset();
        assert_eq!(engine.fact_count(), 0);
        assert_eq!(engine.rule_count(), 1);
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.9)
                .with("eventName", "x"),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.firings.len(), 1, "refraction memory was cleared");
    }

    #[test]
    fn firing_records_capture_bindings() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        let report = engine.run().unwrap();
        let rec = &report.firings[0];
        assert_eq!(rec.rule, "high severity");
        assert_eq!(rec.bindings.get("e"), Some(&Value::from("a")));
        assert_eq!(rec.bindings.get("s"), Some(&Value::from(0.5)));
        assert_eq!(rec.matched.len(), 1);
    }

    #[test]
    fn same_fact_cannot_fill_two_patterns() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("pair")
                    .when(Pattern::new("T"))
                    .when(Pattern::new("T"))
                    .then(move |_| {
                        c.fetch_add(1, Ordering::SeqCst);
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("T"));
        engine.run().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 0, "single fact, two patterns");
        engine.assert_fact(Fact::new("T"));
        engine.run().unwrap();
        // Two facts, ordered pairs (a,b) and (b,a).
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
