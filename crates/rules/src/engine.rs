//! The inference engine: working memory, agenda, match–resolve–act loop.

use crate::fact::{Fact, FactHandle};
use crate::rule::{Action, RhsContext, RhsStatement, Rule};
use crate::value::Value;
use crate::{Result, RuleError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A structured conclusion emitted by a rule — the engine's primary
/// output for the analysis layer. Where the paper's rules print their
/// findings ("Event X has a higher than average stall / cycle rate"),
/// this engine additionally captures them as data so downstream
/// consumers (recommendation rendering, compiler feedback) need not
/// parse text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Category tag, e.g. `"load-imbalance"`, `"memory-locality"`.
    pub category: String,
    /// Human-readable explanation.
    pub message: String,
    /// Severity in `[0, 1]` when the rule quantified it.
    pub severity: Option<f64>,
    /// Suggested remedy, if the rule proposes one.
    pub recommendation: Option<String>,
    /// Name of the rule that fired.
    pub rule: String,
    /// Variable bindings at firing time, so consumers can recover which
    /// event/trial the diagnosis is about without parsing the message.
    #[serde(default)]
    pub bindings: BTreeMap<String, Value>,
}

/// Record of one rule firing, for explanation and audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiringRecord {
    /// Rule that fired.
    pub rule: String,
    /// Handles of the matched facts, in pattern order.
    pub matched: Vec<FactHandle>,
    /// Variable environment at firing time.
    pub bindings: BTreeMap<String, Value>,
}

/// The output of an engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Lines printed by rule actions, in firing order.
    pub printed: Vec<String>,
    /// Structured diagnoses, in firing order.
    pub diagnoses: Vec<Diagnosis>,
    /// One record per firing, in order.
    pub firings: Vec<FiringRecord>,
    /// Match–act cycles executed.
    pub cycles: usize,
}

impl RunReport {
    /// Diagnoses in one category.
    pub fn diagnoses_in(&self, category: &str) -> Vec<&Diagnosis> {
        self.diagnoses
            .iter()
            .filter(|d| d.category == category)
            .collect()
    }

    /// Whether any rule with the given name fired.
    pub fn fired(&self, rule: &str) -> bool {
        self.firings.iter().any(|f| f.rule == rule)
    }

    /// Merges another report produced by a later run on the same engine.
    pub fn absorb(&mut self, other: RunReport) {
        self.printed.extend(other.printed);
        self.diagnoses.extend(other.diagnoses);
        self.firings.extend(other.firings);
        self.cycles += other.cycles;
    }
}

/// One activation candidate: the matched fact tuple and its bindings.
type Activation = (Vec<FactHandle>, BTreeMap<String, Value>);

/// A forward-chaining rule engine.
pub struct Engine {
    rules: Vec<Rule>,
    wm: BTreeMap<FactHandle, Fact>,
    next_handle: u64,
    /// Refraction memory: activations that already fired.
    fired: BTreeSet<(usize, Vec<FactHandle>)>,
    /// Safety bound on total firings per `run`.
    cycle_limit: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Creates an empty engine with the default cycle limit.
    pub fn new() -> Self {
        Engine {
            rules: Vec::new(),
            wm: BTreeMap::new(),
            next_handle: 0,
            fired: BTreeSet::new(),
            cycle_limit: 100_000,
        }
    }

    /// Overrides the firing budget (guards against rules that assert
    /// facts in an unbounded loop).
    pub fn with_cycle_limit(mut self, limit: usize) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Adds one rule. Duplicate names are rejected so a knowledge base
    /// cannot silently shadow itself.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(RuleError::DuplicateRule(rule.name));
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Adds many rules; stops at the first duplicate.
    pub fn add_rules(&mut self, rules: Vec<Rule>) -> Result<()> {
        for r in rules {
            self.add_rule(r)?;
        }
        Ok(())
    }

    /// Asserts a fact into working memory, returning its handle.
    pub fn assert_fact(&mut self, fact: Fact) -> FactHandle {
        let h = FactHandle(self.next_handle);
        self.next_handle += 1;
        self.wm.insert(h, fact);
        h
    }

    /// Retracts a fact; returns it if it was present.
    pub fn retract(&mut self, handle: FactHandle) -> Option<Fact> {
        self.wm.remove(&handle)
    }

    /// Read access to working memory, in handle order.
    pub fn facts(&self) -> impl Iterator<Item = (FactHandle, &Fact)> {
        self.wm.iter().map(|(h, f)| (*h, f))
    }

    /// Number of facts in working memory.
    pub fn fact_count(&self) -> usize {
        self.wm.len()
    }

    /// Number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Clears facts and refraction memory, keeping the rules.
    pub fn reset(&mut self) {
        self.wm.clear();
        self.fired.clear();
        self.next_handle = 0;
    }

    /// Finds every activation of `rule` (index `idx`) against current
    /// working memory: all fact tuples matching the pattern conjunction
    /// with consistent bindings.
    fn activations_of(&self, idx: usize) -> Vec<Activation> {
        let rule = &self.rules[idx];
        let mut partial: Vec<Activation> = vec![(Vec::new(), BTreeMap::new())];
        for pattern in &rule.patterns {
            let mut next = Vec::new();
            for (handles, env) in &partial {
                if pattern.negated {
                    // Absence test: keep the partial match only if no
                    // fact satisfies the pattern under these bindings.
                    let blocked = self
                        .wm
                        .values()
                        .any(|fact| pattern.matches(fact, env).is_some());
                    if !blocked {
                        next.push((handles.clone(), env.clone()));
                    }
                    continue;
                }
                for (h, fact) in &self.wm {
                    // A fact participates at most once per activation: the
                    // paper's nested-loop rule matches two *different*
                    // events with the same pattern shape.
                    if handles.contains(h) {
                        continue;
                    }
                    if let Some(new_env) = pattern.matches(fact, env) {
                        let mut hs = handles.clone();
                        hs.push(*h);
                        next.push((hs, new_env));
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        partial
    }

    /// Selects the next activation to fire: highest salience, then rule
    /// definition order, then fact recency (newest tuple first).
    fn select(&self) -> Option<(usize, Vec<FactHandle>, BTreeMap<String, Value>)> {
        let mut best: Option<(i32, usize, Activation)> = None;
        for idx in 0..self.rules.len() {
            let salience = self.rules[idx].salience;
            // A later rule with lower-or-equal salience cannot beat an
            // already-found activation of an earlier rule.
            if let Some((s, bidx, _)) = &best {
                if *s >= salience && *bidx < idx {
                    continue;
                }
            }
            for (handles, env) in self.activations_of(idx) {
                if self.fired.contains(&(idx, handles.clone())) {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((s, bidx, (bh, _))) => {
                        salience > *s
                            || (salience == *s && idx < *bidx)
                            || (salience == *s && idx == *bidx && handles > *bh)
                    }
                };
                if better {
                    best = Some((salience, idx, (handles, env)));
                }
            }
        }
        best.map(|(_, idx, (h, e))| (idx, h, e))
    }

    /// Runs the match–resolve–act cycle to quiescence.
    pub fn run(&mut self) -> Result<RunReport> {
        let mut report = RunReport::default();
        while let Some((idx, handles, env)) = self.select() {
            if report.firings.len() >= self.cycle_limit {
                return Err(RuleError::CycleLimit {
                    limit: self.cycle_limit,
                });
            }
            self.fired.insert((idx, handles.clone()));

            let matched: Vec<(FactHandle, Fact)> = handles
                .iter()
                .map(|h| (*h, self.wm.get(h).expect("matched fact present").clone()))
                .collect();
            let rule_name = self.rules[idx].name.clone();
            let mut ctx = RhsContext::new(&env, &matched, &rule_name);

            // Matched-fact positions skip negated patterns (they match
            // nothing), so the retract lookup must too.
            let fact_bindings: Vec<Option<String>> = self.rules[idx]
                .patterns
                .iter()
                .filter(|p| !p.negated)
                .map(|p| p.fact_binding.clone())
                .collect();
            match &self.rules[idx].action {
                Action::Native(f) => f(&mut ctx),
                Action::Interpreted(stmts) => {
                    let stmts = stmts.clone();
                    Self::execute_interpreted(&mut ctx, &stmts, &rule_name, &fact_bindings)?;
                }
            }

            let printed = std::mem::take(&mut ctx.printed);
            let diagnoses = std::mem::take(&mut ctx.diagnoses);
            let asserts = std::mem::take(&mut ctx.asserts);
            let retracts = std::mem::take(&mut ctx.retracts);
            drop(ctx);

            report.firings.push(FiringRecord {
                rule: rule_name,
                matched: handles,
                bindings: env,
            });
            report.printed.extend(printed);
            report.diagnoses.extend(diagnoses);

            // Apply buffered commands.
            for h in retracts {
                self.wm.remove(&h);
            }
            for f in asserts {
                self.assert_fact(f);
            }
            report.cycles += 1;
        }
        Ok(report)
    }

    /// Executes interpreted RHS statements into the context.
    fn execute_interpreted(
        ctx: &mut RhsContext,
        statements: &[RhsStatement],
        rule_name: &str,
        fact_bindings: &[Option<String>],
    ) -> Result<()> {
        let unbound = |variable: &str| RuleError::UnboundVariable {
            rule: rule_name.to_string(),
            variable: variable.to_string(),
        };
        let eval = |expr: &crate::rule::RhsExpr, ctx: &RhsContext| -> Result<Value> {
            expr.eval(ctx.env).ok_or_else(|| {
                let mut vars = Vec::new();
                expr.variables(&mut vars);
                let missing = vars
                    .into_iter()
                    .find(|v| !ctx.env.contains_key(v))
                    .unwrap_or_default();
                unbound(&missing)
            })
        };
        for stmt in statements {
            match stmt {
                RhsStatement::Print(parts) => {
                    let mut line = String::new();
                    for p in parts {
                        line.push_str(&eval(p, ctx)?.to_string());
                    }
                    ctx.print(line);
                }
                RhsStatement::Assert { fact_type, fields } => {
                    let mut fact = Fact::new(fact_type.clone());
                    for (name, expr) in fields {
                        let v = eval(expr, ctx)?;
                        fact.set(name, v);
                    }
                    ctx.assert_fact(fact);
                }
                RhsStatement::Retract(var) => {
                    // The variable names a fact binding: find the pattern
                    // that bound it and retract the corresponding fact.
                    let handle = fact_bindings
                        .iter()
                        .position(|name| name.as_deref() == Some(var.as_str()))
                        .and_then(|i| ctx.matched.get(i))
                        .map(|(h, _)| *h);
                    match handle {
                        Some(h) => ctx.retract(h),
                        None => return Err(unbound(var)),
                    }
                }
                RhsStatement::Diagnose {
                    category,
                    message,
                    severity,
                    recommendation,
                } => {
                    let cat = eval(category, ctx)?.to_string();
                    let msg = eval(message, ctx)?.to_string();
                    let sev = match severity {
                        Some(e) => eval(e, ctx)?.as_num(),
                        None => None,
                    };
                    let rec = match recommendation {
                        Some(e) => Some(eval(e, ctx)?.to_string()),
                        None => None,
                    };
                    let rule = ctx.rule_name.to_string();
                    ctx.diagnose(Diagnosis {
                        category: cat,
                        message: msg,
                        severity: sev,
                        recommendation: rec,
                        rule,
                        bindings: BTreeMap::new(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Comparator, Pattern};
    use crate::rule::Rule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn high_severity_rule() -> Rule {
        Rule::builder("high severity")
            .when(
                Pattern::new("MeanEventFact")
                    .constrain("severity", Comparator::Gt, 0.1)
                    .bind("e", "eventName")
                    .bind("s", "severity"),
            )
            .then(|ctx| {
                let e = ctx.var("e").unwrap().to_string();
                ctx.print(format!("severe: {e}"));
            })
    }

    #[test]
    fn single_rule_fires_per_matching_fact() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.05)
                .with("eventName", "b"),
        );
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.2)
                .with("eventName", "c"),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.firings.len(), 2);
        assert!(report.printed.contains(&"severe: a".to_string()));
        assert!(report.printed.contains(&"severe: c".to_string()));
    }

    #[test]
    fn refraction_prevents_refiring_on_second_run() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        let first = engine.run().unwrap();
        assert_eq!(first.firings.len(), 1);
        let second = engine.run().unwrap();
        assert_eq!(second.firings.len(), 0);
        // A new equal fact is a new activation.
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        let third = engine.run().unwrap();
        assert_eq!(third.firings.len(), 1);
    }

    #[test]
    fn salience_orders_firing() {
        let order = Arc::new(parking());
        fn parking() -> std::sync::Mutex<Vec<&'static str>> {
            std::sync::Mutex::new(Vec::new())
        }
        let o1 = order.clone();
        let o2 = order.clone();
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("low")
                    .salience(1)
                    .when(Pattern::new("T"))
                    .then(move |_| o1.lock().unwrap().push("low")),
            )
            .unwrap();
        engine
            .add_rule(
                Rule::builder("high")
                    .salience(10)
                    .when(Pattern::new("T"))
                    .then(move |_| o2.lock().unwrap().push("high")),
            )
            .unwrap();
        engine.assert_fact(Fact::new("T"));
        engine.run().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["high", "low"]);
    }

    #[test]
    fn chaining_asserted_facts_trigger_other_rules() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("producer")
                    .when(Pattern::new("Input").bind("v", "value"))
                    .then(|ctx| {
                        let v = ctx.var("v").cloned().unwrap();
                        ctx.assert_fact(Fact::new("Derived").with("value", v));
                    }),
            )
            .unwrap();
        engine
            .add_rule(
                Rule::builder("consumer")
                    .when(Pattern::new("Derived").bind("v", "value"))
                    .then(|ctx| {
                        let v = ctx.var("v").unwrap().to_string();
                        ctx.print(format!("derived {v}"));
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Input").with("value", 7.0));
        let report = engine.run().unwrap();
        assert!(report.fired("producer"));
        assert!(report.fired("consumer"));
        assert_eq!(report.printed, vec!["derived 7"]);
    }

    #[test]
    fn join_across_patterns_with_binding() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("nested imbalance")
                    .when(
                        Pattern::new("Region")
                            .constrain("imbalanced", Comparator::Eq, true)
                            .bind("outer", "name"),
                    )
                    .when(
                        Pattern::new("Region")
                            .constrain("imbalanced", Comparator::Eq, true)
                            .constrain_var("parent", Comparator::Eq, "outer")
                            .bind("inner", "name"),
                    )
                    .then(|ctx| {
                        let o = ctx.var("outer").unwrap().to_string();
                        let i = ctx.var("inner").unwrap().to_string();
                        ctx.print(format!("{i} nested in {o}"));
                    }),
            )
            .unwrap();
        engine.assert_fact(
            Fact::new("Region")
                .with("name", "outer_loop")
                .with("parent", "main")
                .with("imbalanced", true),
        );
        engine.assert_fact(
            Fact::new("Region")
                .with("name", "inner_loop")
                .with("parent", "outer_loop")
                .with("imbalanced", true),
        );
        engine.assert_fact(
            Fact::new("Region")
                .with("name", "unrelated")
                .with("parent", "main")
                .with("imbalanced", false),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["inner_loop nested in outer_loop"]);
    }

    #[test]
    fn retraction_removes_fact_from_memory() {
        let mut engine = Engine::new();
        let h = engine.assert_fact(Fact::new("T").with("x", 1.0));
        assert_eq!(engine.fact_count(), 1);
        let f = engine.retract(h).unwrap();
        assert_eq!(f.get_num("x"), Some(1.0));
        assert_eq!(engine.fact_count(), 0);
        assert!(engine.retract(h).is_none());
    }

    #[test]
    fn native_retract_during_firing() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("consume")
                    .when(Pattern::new("Token").bind_fact("t"))
                    .then(|ctx| {
                        let (h, _) = ctx.matched[0];
                        ctx.retract(h);
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Token"));
        engine.run().unwrap();
        assert_eq!(engine.fact_count(), 0);
    }

    #[test]
    fn cycle_limit_stops_runaway_rules() {
        let mut engine = Engine::new().with_cycle_limit(25);
        engine
            .add_rule(
                Rule::builder("runaway")
                    .when(Pattern::new("Seed").bind("n", "n"))
                    .then(|ctx| {
                        // Asserts a fresh Seed each firing: never settles.
                        let n = ctx.var("n").and_then(Value::as_num).unwrap_or(0.0);
                        ctx.assert_fact(Fact::new("Seed").with("n", n + 1.0));
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Seed").with("n", 0.0));
        assert!(matches!(
            engine.run(),
            Err(RuleError::CycleLimit { limit: 25 })
        ));
    }

    #[test]
    fn duplicate_rule_name_rejected() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        assert!(matches!(
            engine.add_rule(high_severity_rule()),
            Err(RuleError::DuplicateRule(_))
        ));
    }

    #[test]
    fn reset_clears_memory_but_keeps_rules() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.9)
                .with("eventName", "x"),
        );
        engine.run().unwrap();
        engine.reset();
        assert_eq!(engine.fact_count(), 0);
        assert_eq!(engine.rule_count(), 1);
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.9)
                .with("eventName", "x"),
        );
        let report = engine.run().unwrap();
        assert_eq!(report.firings.len(), 1, "refraction memory was cleared");
    }

    #[test]
    fn firing_records_capture_bindings() {
        let mut engine = Engine::new();
        engine.add_rule(high_severity_rule()).unwrap();
        engine.assert_fact(
            Fact::new("MeanEventFact")
                .with("severity", 0.5)
                .with("eventName", "a"),
        );
        let report = engine.run().unwrap();
        let rec = &report.firings[0];
        assert_eq!(rec.rule, "high severity");
        assert_eq!(rec.bindings.get("e"), Some(&Value::from("a")));
        assert_eq!(rec.bindings.get("s"), Some(&Value::from(0.5)));
        assert_eq!(rec.matched.len(), 1);
    }

    #[test]
    fn same_fact_cannot_fill_two_patterns() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("pair")
                    .when(Pattern::new("T"))
                    .when(Pattern::new("T"))
                    .then(move |_| {
                        c.fetch_add(1, Ordering::SeqCst);
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("T"));
        engine.run().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 0, "single fact, two patterns");
        engine.assert_fact(Fact::new("T"));
        engine.run().unwrap();
        // Two facts, ordered pairs (a,b) and (b,a).
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
