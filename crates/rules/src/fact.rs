//! Facts: typed bags of named values in working memory.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Handle identifying a fact instance inside an engine's working memory.
///
/// Handles are never reused: retracting a fact and asserting an equal one
/// yields a new handle, which is what makes refraction (fire-once per
/// activation) behave like Drools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FactHandle(pub u64);

/// A typed fact, e.g. the paper's `MeanEventFact` with fields `metric`,
/// `higherLower`, `severity`, `eventName`, `mainValue`, `eventValue`,
/// `factType`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fact {
    /// The fact type name used by pattern matching.
    pub fact_type: String,
    /// Named fields.
    pub fields: BTreeMap<String, Value>,
}

impl Fact {
    /// Creates an empty fact of the given type.
    pub fn new(fact_type: impl Into<String>) -> Self {
        Fact {
            fact_type: fact_type.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Builder-style field setter.
    pub fn with(mut self, field: &str, value: impl Into<Value>) -> Self {
        self.fields.insert(field.to_string(), value.into());
        self
    }

    /// Sets a field in place.
    pub fn set(&mut self, field: &str, value: impl Into<Value>) {
        self.fields.insert(field.to_string(), value.into());
    }

    /// Field lookup.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// String field lookup.
    pub fn get_str(&self, field: &str) -> Option<&str> {
        self.get(field).and_then(Value::as_str)
    }

    /// Numeric field lookup.
    pub fn get_num(&self, field: &str) -> Option<f64> {
        self.get(field).and_then(Value::as_num)
    }

    /// Boolean field lookup.
    pub fn get_bool(&self, field: &str) -> Option<bool> {
        self.get(field).and_then(Value::as_bool)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.fact_type)?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookups() {
        let f = Fact::new("MeanEventFact")
            .with("metric", "stall_per_cycle")
            .with("severity", 0.31)
            .with("higher", true);
        assert_eq!(f.fact_type, "MeanEventFact");
        assert_eq!(f.get_str("metric"), Some("stall_per_cycle"));
        assert_eq!(f.get_num("severity"), Some(0.31));
        assert_eq!(f.get_bool("higher"), Some(true));
        assert_eq!(f.get("missing"), None);
        assert_eq!(f.get_num("metric"), None);
    }

    #[test]
    fn set_replaces() {
        let mut f = Fact::new("T").with("a", 1.0);
        f.set("a", 2.0);
        assert_eq!(f.get_num("a"), Some(2.0));
    }

    #[test]
    fn display_is_compact() {
        let f = Fact::new("T").with("x", 1.0).with("name", "loop");
        assert_eq!(f.to_string(), "T(name: loop, x: 1)");
    }

    #[test]
    fn serde_roundtrip() {
        let f = Fact::new("T").with("x", 1.5).with("s", "v");
        let json = serde_json::to_string(&f).unwrap();
        let back: Fact = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
