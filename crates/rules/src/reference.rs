//! The naive match–resolve–act engine kept as an executable
//! specification.
//!
//! [`ReferenceEngine`] re-derives every activation of every rule from
//! scratch after each firing by scanning all of working memory — the
//! pre-index behaviour of [`crate::Engine`]. It exists for two reasons:
//!
//! * **differential testing** — the equivalence property tests drive
//!   both engines with identical rulebases and assert/retract sequences
//!   and require identical firing order, reports and final memory;
//! * **ablation benchmarking** — `bench -p bench --bench engine`
//!   measures the incremental indexed agenda against this rematch loop.
//!
//! It is not intended for production use: its per-firing cost is
//! O(rules × |WM|^patterns).

use crate::engine::{Engine, FiringRecord, RunReport};
use crate::fact::{Fact, FactHandle};
use crate::rule::{Action, RhsContext, Rule};
use crate::value::Value;
use crate::{Result, RuleError};
use std::collections::{BTreeMap, BTreeSet};

/// One activation candidate: the matched fact tuple and its bindings.
type Activation = (Vec<FactHandle>, BTreeMap<String, Value>);

/// A forward-chaining engine that rebuilds its conflict set from scratch
/// on every selection — the behavioural reference for [`crate::Engine`].
pub struct ReferenceEngine {
    rules: Vec<Rule>,
    wm: BTreeMap<FactHandle, Fact>,
    next_handle: u64,
    fired: BTreeSet<(usize, Vec<FactHandle>)>,
    cycle_limit: usize,
}

impl Default for ReferenceEngine {
    fn default() -> Self {
        ReferenceEngine::new()
    }
}

impl ReferenceEngine {
    /// Creates an empty engine with the default cycle limit.
    pub fn new() -> Self {
        ReferenceEngine {
            rules: Vec::new(),
            wm: BTreeMap::new(),
            next_handle: 0,
            fired: BTreeSet::new(),
            cycle_limit: 100_000,
        }
    }

    /// Overrides the firing budget.
    pub fn with_cycle_limit(mut self, limit: usize) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Adds one rule; duplicate names are rejected.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(RuleError::DuplicateRule(rule.name));
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Adds many rules; stops at the first duplicate.
    pub fn add_rules(&mut self, rules: Vec<Rule>) -> Result<()> {
        for r in rules {
            self.add_rule(r)?;
        }
        Ok(())
    }

    /// Asserts a fact into working memory, returning its handle.
    pub fn assert_fact(&mut self, fact: Fact) -> FactHandle {
        let h = FactHandle(self.next_handle);
        self.next_handle += 1;
        self.wm.insert(h, fact);
        h
    }

    /// Retracts a fact; returns it if it was present. Mirrors the
    /// production engine's refraction purge (handles are never reused,
    /// so entries naming the dead handle can never match again).
    pub fn retract(&mut self, handle: FactHandle) -> Option<Fact> {
        let fact = self.wm.remove(&handle)?;
        self.fired.retain(|(_, hs)| !hs.contains(&handle));
        Some(fact)
    }

    /// Read access to working memory, in handle order.
    pub fn facts(&self) -> impl Iterator<Item = (FactHandle, &Fact)> {
        self.wm.iter().map(|(h, f)| (*h, f))
    }

    /// Number of facts in working memory.
    pub fn fact_count(&self) -> usize {
        self.wm.len()
    }

    /// Number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of refraction-memory entries currently retained.
    pub fn refraction_len(&self) -> usize {
        self.fired.len()
    }

    /// Clears facts and refraction memory, keeping the rules and the
    /// monotonic handle counter.
    pub fn reset(&mut self) {
        self.wm.clear();
        self.fired.clear();
    }

    /// Finds every activation of rule `idx` by scanning all of working
    /// memory for every pattern.
    fn activations_of(&self, idx: usize) -> Vec<Activation> {
        let rule = &self.rules[idx];
        let mut partial: Vec<Activation> = vec![(Vec::new(), BTreeMap::new())];
        for pattern in &rule.patterns {
            let mut next = Vec::new();
            for (handles, env) in &partial {
                if pattern.negated {
                    let blocked = self
                        .wm
                        .values()
                        .any(|fact| pattern.matches(fact, env).is_some());
                    if !blocked {
                        next.push((handles.clone(), env.clone()));
                    }
                    continue;
                }
                for (h, fact) in &self.wm {
                    if handles.contains(h) {
                        continue;
                    }
                    if let Some(new_env) = pattern.matches(fact, env) {
                        let mut hs = handles.clone();
                        hs.push(*h);
                        next.push((hs, new_env));
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        partial
    }

    /// Selects the next activation: highest salience, then rule
    /// definition order, then fact recency (newest tuple first).
    fn select(&self) -> Option<(usize, Vec<FactHandle>, BTreeMap<String, Value>)> {
        let mut best: Option<(i32, usize, Activation)> = None;
        for idx in 0..self.rules.len() {
            let salience = self.rules[idx].salience;
            if let Some((s, bidx, _)) = &best {
                if *s >= salience && *bidx < idx {
                    continue;
                }
            }
            for (handles, env) in self.activations_of(idx) {
                if self.fired.contains(&(idx, handles.clone())) {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((s, bidx, (bh, _))) => {
                        salience > *s
                            || (salience == *s && idx < *bidx)
                            || (salience == *s && idx == *bidx && handles > *bh)
                    }
                };
                if better {
                    best = Some((salience, idx, (handles, env)));
                }
            }
        }
        best.map(|(_, idx, (h, e))| (idx, h, e))
    }

    /// Runs the match–resolve–act cycle to quiescence, rebuilding the
    /// conflict set before every firing.
    pub fn run(&mut self) -> Result<RunReport> {
        let mut report = RunReport::default();
        while let Some((idx, handles, env)) = self.select() {
            if report.firings.len() >= self.cycle_limit {
                return Err(RuleError::CycleLimit {
                    limit: self.cycle_limit,
                    report: Box::new(report),
                });
            }
            self.fired.insert((idx, handles.clone()));

            let matched: Vec<(FactHandle, Fact)> = handles
                .iter()
                .map(|h| (*h, self.wm.get(h).expect("matched fact present").clone()))
                .collect();
            let rule_name = self.rules[idx].name.clone();
            let mut ctx = RhsContext::new(&env, &matched, &rule_name);

            let fact_bindings: Vec<Option<String>> = self.rules[idx]
                .patterns
                .iter()
                .filter(|p| !p.negated)
                .map(|p| p.fact_binding.clone())
                .collect();
            match &self.rules[idx].action {
                Action::Native(f) => f(&mut ctx),
                Action::Interpreted(stmts) => {
                    let stmts = stmts.clone();
                    Engine::execute_interpreted(&mut ctx, &stmts, &rule_name, &fact_bindings)?;
                }
            }

            let printed = std::mem::take(&mut ctx.printed);
            let diagnoses = std::mem::take(&mut ctx.diagnoses);
            let asserts = std::mem::take(&mut ctx.asserts);
            let retracts = std::mem::take(&mut ctx.retracts);
            drop(ctx);

            report.firings.push(FiringRecord {
                rule: rule_name,
                matched: handles,
                bindings: env,
            });
            report.printed.extend(printed);
            report.diagnoses.extend(diagnoses);

            for h in retracts {
                self.retract(h);
            }
            for f in asserts {
                self.assert_fact(f);
            }
            report.cycles += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Comparator, Pattern};

    #[test]
    fn reference_engine_basic_behaviour() {
        let mut engine = ReferenceEngine::new();
        engine
            .add_rule(
                Rule::builder("severe")
                    .when(
                        Pattern::new("F")
                            .constrain("s", Comparator::Gt, 0.5)
                            .bind("e", "name"),
                    )
                    .then(|ctx| {
                        let e = ctx.var("e").unwrap().to_string();
                        ctx.print(format!("severe: {e}"));
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("F").with("s", 0.9).with("name", "a"));
        engine.assert_fact(Fact::new("F").with("s", 0.1).with("name", "b"));
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["severe: a"]);
        assert_eq!(engine.run().unwrap().firings.len(), 0, "refraction");
    }

    #[test]
    fn reference_handles_monotonic_and_purged() {
        let mut engine = ReferenceEngine::new();
        let a = engine.assert_fact(Fact::new("T"));
        engine.reset();
        let b = engine.assert_fact(Fact::new("T"));
        assert_ne!(a, b);
        engine
            .add_rule(Rule::builder("r").when(Pattern::new("T")).then(|_| {}))
            .unwrap();
        engine.run().unwrap();
        assert_eq!(engine.refraction_len(), 1);
        engine.retract(b);
        assert_eq!(engine.refraction_len(), 0);
    }
}
