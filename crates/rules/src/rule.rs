//! Rules: pattern conjunctions paired with actions.

use crate::condition::Pattern;
use crate::engine::Diagnosis;
use crate::fact::{Fact, FactHandle};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An expression on a rule's right-hand side, evaluated against the
/// variables bound by the left-hand side.
#[derive(Debug, Clone, PartialEq)]
pub enum RhsExpr {
    /// A literal value.
    Literal(Value),
    /// A variable bound by the LHS.
    Var(String),
    /// `a + b`: string concatenation if either side is a string,
    /// numeric addition otherwise.
    Add(Box<RhsExpr>, Box<RhsExpr>),
}

impl RhsExpr {
    /// Evaluates the expression; `None` on an unbound variable.
    pub fn eval(&self, env: &BTreeMap<String, Value>) -> Option<Value> {
        match self {
            RhsExpr::Literal(v) => Some(v.clone()),
            RhsExpr::Var(name) => env.get(name).cloned(),
            RhsExpr::Add(a, b) => {
                let va = a.eval(env)?;
                let vb = b.eval(env)?;
                Some(match (&va, &vb) {
                    (Value::Num(x), Value::Num(y)) => Value::Num(x + y),
                    _ => Value::Str(format!("{va}{vb}")),
                })
            }
        }
    }

    /// Names of the variables the expression references.
    pub fn variables(&self, out: &mut Vec<String>) {
        match self {
            RhsExpr::Literal(_) => {}
            RhsExpr::Var(v) => out.push(v.clone()),
            RhsExpr::Add(a, b) => {
                a.variables(out);
                b.variables(out);
            }
        }
    }
}

/// One interpreted right-hand-side statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RhsStatement {
    /// Prints the concatenation of the expressions to the run report.
    Print(Vec<RhsExpr>),
    /// Asserts a new fact built from evaluated field expressions.
    Assert {
        /// Fact type to assert.
        fact_type: String,
        /// Field initialisers.
        fields: Vec<(String, RhsExpr)>,
    },
    /// Retracts the fact bound to the named fact-binding variable.
    Retract(String),
    /// Emits a [`Diagnosis`] — the engine's structured conclusion type.
    Diagnose {
        /// Diagnosis category (e.g. `"load-imbalance"`).
        category: RhsExpr,
        /// Human-readable explanation.
        message: RhsExpr,
        /// Optional severity in `[0, 1]`.
        severity: Option<RhsExpr>,
        /// Optional recommendation text.
        recommendation: Option<RhsExpr>,
    },
}

/// The action side of a rule.
#[derive(Clone)]
pub enum Action {
    /// A list of interpreted statements (the form the DRL parser builds).
    Interpreted(Vec<RhsStatement>),
    /// A native Rust callback.
    Native(Arc<dyn Fn(&mut RhsContext) + Send + Sync>),
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Interpreted(stmts) => f.debug_tuple("Interpreted").field(stmts).finish(),
            Action::Native(_) => f.write_str("Native(..)"),
        }
    }
}

/// Context handed to a firing rule's action.
///
/// Mutations are buffered as commands and applied by the engine after the
/// action returns, keeping working memory consistent during matching.
pub struct RhsContext<'a> {
    /// Variables bound by the LHS.
    pub env: &'a BTreeMap<String, Value>,
    /// The matched facts (handle + snapshot), in pattern order.
    pub matched: &'a [(FactHandle, Fact)],
    /// Name of the firing rule.
    pub rule_name: &'a str,
    pub(crate) printed: Vec<String>,
    pub(crate) asserts: Vec<Fact>,
    pub(crate) retracts: Vec<FactHandle>,
    pub(crate) diagnoses: Vec<Diagnosis>,
}

impl<'a> RhsContext<'a> {
    pub(crate) fn new(
        env: &'a BTreeMap<String, Value>,
        matched: &'a [(FactHandle, Fact)],
        rule_name: &'a str,
    ) -> Self {
        RhsContext {
            env,
            matched,
            rule_name,
            printed: Vec::new(),
            asserts: Vec::new(),
            retracts: Vec::new(),
            diagnoses: Vec::new(),
        }
    }

    /// Looks up a bound variable.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.env.get(name)
    }

    /// Emits a line of output.
    pub fn print(&mut self, message: impl Into<String>) {
        self.printed.push(message.into());
    }

    /// Schedules a fact assertion.
    pub fn assert_fact(&mut self, fact: Fact) {
        self.asserts.push(fact);
    }

    /// Schedules retraction of a matched fact.
    pub fn retract(&mut self, handle: FactHandle) {
        self.retracts.push(handle);
    }

    /// Emits a structured diagnosis. The LHS variable bindings are
    /// attached automatically when the diagnosis carries none.
    pub fn diagnose(&mut self, mut diagnosis: Diagnosis) {
        if diagnosis.bindings.is_empty() {
            diagnosis.bindings = self.env.clone();
        }
        self.diagnoses.push(diagnosis);
    }
}

/// A production rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name (unique within an engine).
    pub name: String,
    /// Conflict-resolution priority; higher fires first.
    pub salience: i32,
    /// LHS: all patterns must match with consistent bindings.
    pub patterns: Vec<Pattern>,
    /// RHS.
    pub action: Action,
}

impl Rule {
    /// Starts building a rule.
    pub fn builder(name: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            name: name.into(),
            salience: 0,
            patterns: Vec::new(),
        }
    }
}

/// Builder for programmatic rule construction.
#[derive(Debug, Clone)]
pub struct RuleBuilder {
    name: String,
    salience: i32,
    patterns: Vec<Pattern>,
}

impl RuleBuilder {
    /// Sets the salience (higher fires first; default 0).
    pub fn salience(mut self, salience: i32) -> Self {
        self.salience = salience;
        self
    }

    /// Adds an LHS pattern.
    pub fn when(mut self, pattern: Pattern) -> Self {
        self.patterns.push(pattern);
        self
    }

    /// Finishes with a native action.
    pub fn then(self, f: impl Fn(&mut RhsContext) + Send + Sync + 'static) -> Rule {
        Rule {
            name: self.name,
            salience: self.salience,
            patterns: self.patterns,
            action: Action::Native(Arc::new(f)),
        }
    }

    /// Finishes with interpreted statements.
    pub fn then_interpreted(self, statements: Vec<RhsStatement>) -> Rule {
        Rule {
            name: self.name,
            salience: self.salience,
            patterns: self.patterns,
            action: Action::Interpreted(statements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn expr_eval_literals_and_vars() {
        let env = env_with(&[("x", Value::from(2.0))]);
        assert_eq!(
            RhsExpr::Literal(Value::from(1.0)).eval(&env),
            Some(Value::from(1.0))
        );
        assert_eq!(RhsExpr::Var("x".into()).eval(&env), Some(Value::from(2.0)));
        assert_eq!(RhsExpr::Var("missing".into()).eval(&env), None);
    }

    #[test]
    fn add_is_numeric_for_numbers() {
        let env = env_with(&[]);
        let e = RhsExpr::Add(
            Box::new(RhsExpr::Literal(Value::from(1.5))),
            Box::new(RhsExpr::Literal(Value::from(2.0))),
        );
        assert_eq!(e.eval(&env), Some(Value::from(3.5)));
    }

    #[test]
    fn add_concatenates_with_strings() {
        let env = env_with(&[("e", Value::from("matxvec"))]);
        let e = RhsExpr::Add(
            Box::new(RhsExpr::Literal(Value::from("Event "))),
            Box::new(RhsExpr::Var("e".into())),
        );
        assert_eq!(e.eval(&env), Some(Value::from("Event matxvec")));
        // Mixed: number formats through Display.
        let m = RhsExpr::Add(
            Box::new(RhsExpr::Literal(Value::from("n = "))),
            Box::new(RhsExpr::Literal(Value::from(16.0))),
        );
        assert_eq!(m.eval(&env), Some(Value::from("n = 16")));
    }

    #[test]
    fn variables_are_collected() {
        let e = RhsExpr::Add(
            Box::new(RhsExpr::Var("a".into())),
            Box::new(RhsExpr::Add(
                Box::new(RhsExpr::Var("b".into())),
                Box::new(RhsExpr::Literal(Value::from(1.0))),
            )),
        );
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(vars, vec!["a", "b"]);
    }

    #[test]
    fn context_buffers_commands() {
        let env = env_with(&[]);
        let matched: Vec<(FactHandle, Fact)> = Vec::new();
        let mut ctx = RhsContext::new(&env, &matched, "r");
        ctx.print("hello");
        ctx.assert_fact(Fact::new("T"));
        ctx.retract(FactHandle(3));
        assert_eq!(ctx.printed, vec!["hello"]);
        assert_eq!(ctx.asserts.len(), 1);
        assert_eq!(ctx.retracts, vec![FactHandle(3)]);
    }

    #[test]
    fn builder_builds() {
        let r = Rule::builder("test")
            .salience(5)
            .when(Pattern::new("A"))
            .then(|_ctx| {});
        assert_eq!(r.name, "test");
        assert_eq!(r.salience, 5);
        assert_eq!(r.patterns.len(), 1);
        assert!(matches!(r.action, Action::Native(_)));
    }
}
