//! Property-based tests for the rule engine.

use proptest::prelude::*;
use rules::{Comparator, Engine, Fact, Pattern, Rule};

proptest! {
    /// A threshold rule fires exactly once per fact above the threshold.
    #[test]
    fn threshold_rule_fires_once_per_match(
        severities in prop::collection::vec(0.0f64..1.0, 0..24),
        threshold in 0.1f64..0.9,
    ) {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("threshold")
                    .when(Pattern::new("F").constrain("s", Comparator::Gt, threshold))
                    .then(|_| {}),
            )
            .unwrap();
        for &s in &severities {
            engine.assert_fact(Fact::new("F").with("s", s));
        }
        let report = engine.run().unwrap();
        let expected = severities.iter().filter(|&&s| s > threshold).count();
        prop_assert_eq!(report.firings.len(), expected);
        // Second run: refraction means nothing new fires.
        let again = engine.run().unwrap();
        prop_assert_eq!(again.firings.len(), 0);
    }

    /// Firing count never exceeds (facts choose patterns) activations.
    #[test]
    fn join_rule_activation_bound(
        n_a in 0usize..6,
        n_b in 0usize..6,
    ) {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("pairs")
                    .when(Pattern::new("A"))
                    .when(Pattern::new("B"))
                    .then(|_| {}),
            )
            .unwrap();
        for i in 0..n_a {
            engine.assert_fact(Fact::new("A").with("i", i));
        }
        for i in 0..n_b {
            engine.assert_fact(Fact::new("B").with("i", i));
        }
        let report = engine.run().unwrap();
        prop_assert_eq!(report.firings.len(), n_a * n_b);
    }

    /// Retract-on-fire consumes each token exactly once regardless of
    /// assertion order.
    #[test]
    fn consuming_rule_leaves_empty_memory(n in 0usize..16) {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("consume")
                    .when(Pattern::new("Token").bind_fact("t"))
                    .then(|ctx| {
                        let (h, _) = ctx.matched[0];
                        ctx.retract(h);
                    }),
            )
            .unwrap();
        for i in 0..n {
            engine.assert_fact(Fact::new("Token").with("i", i));
        }
        let report = engine.run().unwrap();
        prop_assert_eq!(report.firings.len(), n);
        prop_assert_eq!(engine.fact_count(), 0);
    }

    /// Salience strictly orders firings across rules.
    #[test]
    fn salience_order_is_respected(saliences in prop::collection::vec(-10i32..10, 1..6)) {
        use std::sync::{Arc, Mutex};
        let order: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut engine = Engine::new();
        for (i, &s) in saliences.iter().enumerate() {
            let o = order.clone();
            engine
                .add_rule(
                    Rule::builder(format!("r{i}"))
                        .salience(s)
                        .when(Pattern::new("T"))
                        .then(move |_| o.lock().unwrap().push(s)),
                )
                .unwrap();
        }
        engine.assert_fact(Fact::new("T"));
        engine.run().unwrap();
        let fired = order.lock().unwrap().clone();
        prop_assert_eq!(fired.len(), saliences.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] >= w[1], "salience order violated: {:?}", fired);
        }
    }
}

mod negation {
    use rules::{drl, Comparator, Engine, Fact, Pattern, Rule};

    #[test]
    fn negated_pattern_blocks_when_fact_present() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("no errors")
                    .when(Pattern::new("Run").bind("id", "id"))
                    .when(
                        Pattern::new("Error")
                            .constrain_var("run", Comparator::Eq, "id")
                            .negate(),
                    )
                    .then(|ctx| {
                        let id = ctx.var("id").unwrap().to_string();
                        ctx.print(format!("run {id} clean"));
                    }),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Run").with("id", "a"));
        engine.assert_fact(Fact::new("Run").with("id", "b"));
        engine.assert_fact(Fact::new("Error").with("run", "b"));
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["run a clean"]);
    }

    #[test]
    fn negation_reacts_to_retraction() {
        let mut engine = Engine::new();
        engine
            .add_rule(
                Rule::builder("quiet")
                    .when(Pattern::new("Probe"))
                    .when(Pattern::new("Noise").negate())
                    .then(|ctx| ctx.print("quiet")),
            )
            .unwrap();
        engine.assert_fact(Fact::new("Probe"));
        let noise = engine.assert_fact(Fact::new("Noise"));
        let first = engine.run().unwrap();
        assert!(first.printed.is_empty());
        engine.retract(noise);
        let second = engine.run().unwrap();
        assert_eq!(second.printed, vec!["quiet"]);
    }

    #[test]
    fn drl_not_syntax_parses_and_fires() {
        let src = r#"
rule "lonely"
when
    Event( e : name )
    not Partner( event == e )
then
    print(e + " has no partner");
end
"#;
        let mut engine = Engine::new();
        engine.add_rules(drl::parse(src).unwrap()).unwrap();
        engine.assert_fact(Fact::new("Event").with("name", "solo"));
        engine.assert_fact(Fact::new("Event").with("name", "paired"));
        engine.assert_fact(Fact::new("Partner").with("event", "paired"));
        let report = engine.run().unwrap();
        assert_eq!(report.printed, vec!["solo has no partner"]);
    }

    #[test]
    fn negated_fact_binding_is_a_parse_error() {
        let src = "rule \"x\" when not f : T( ) then end";
        assert!(drl::parse(src).is_err());
    }

    #[test]
    fn retract_in_rule_with_negation_targets_right_fact() {
        // Negated patterns occupy no matched-fact slot, so retract(f)
        // must hit the fact bound by the *positive* pattern.
        let src = r#"
rule "consume unmatched"
when
    f : Token( t : id )
    not Seen( id == t )
then
    retract(f);
    assert Seen( id : t );
end
"#;
        let mut engine = Engine::new();
        engine.add_rules(drl::parse(src).unwrap()).unwrap();
        engine.assert_fact(Fact::new("Token").with("id", "x"));
        engine.run().unwrap();
        let kinds: Vec<String> = engine.facts().map(|(_, f)| f.fact_type.clone()).collect();
        assert_eq!(kinds, vec!["Seen"]);
    }
}
