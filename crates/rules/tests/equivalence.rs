//! Differential property tests: the incremental indexed engine must be
//! observationally equivalent to the naive rematch reference — same
//! firings, same order, same reports, same working memory — for random
//! rulebases and random assert/retract sequences.

use proptest::prelude::*;
use rules::reference::ReferenceEngine;
use rules::{Comparator, Engine, Fact, Pattern, RhsExpr, RhsStatement, Rule, Value};

const TYPES: [&str; 3] = ["A", "B", "C"];
const CYCLE_LIMIT: usize = 80;

/// Plan for one generated pattern over field `k`.
#[derive(Debug, Clone)]
struct PatternPlan {
    ty: usize,
    /// Literal constraint on `k`: comparator selector and operand.
    lit: Option<(u32, i64)>,
    /// Bind the shared variable `v` to `k` (joins + unification).
    bind_v: bool,
    /// Constrain `k == v` against an earlier binding of `v`.
    join_v: bool,
}

/// Plan for one generated rule.
#[derive(Debug, Clone)]
struct RulePlan {
    salience: i32,
    patterns: Vec<PatternPlan>,
    negated: Option<PatternPlan>,
    bind_fact: bool,
    retract_f: bool,
    assert_fact: Option<(usize, i64)>,
    diagnose: bool,
}

/// One step of the driver sequence.
#[derive(Debug, Clone)]
enum Op {
    Assert { ty: usize, k: i64, s: bool },
    Retract(usize),
    Run,
}

/// The shim has no `any::<bool>()`; derive booleans from a range.
fn pbool() -> impl Strategy<Value = bool> {
    (0u32..2).prop_map(|b| b == 1)
}

fn pattern_plan() -> impl Strategy<Value = PatternPlan> {
    (
        0..TYPES.len(),
        // ~50% Some: comparator selector + operand for the `k` literal.
        (0u32..2, 0u32..3, 0i64..4).prop_map(|(some, cmp, v)| (some == 1).then_some((cmp, v))),
        pbool(),
        pbool(),
    )
        .prop_map(|(ty, lit, bind_v, join_v)| PatternPlan {
            ty,
            lit,
            bind_v,
            join_v,
        })
}

fn rule_plan() -> impl Strategy<Value = RulePlan> {
    // The shim's tuple strategies stop at six elements, so the seven
    // plan fields are grouped into two nested tuples.
    (
        (
            -3i32..4,
            proptest::collection::vec(pattern_plan(), 1..=3),
            // ~40% of rules carry a negated pattern.
            (0u32..10, pattern_plan()).prop_map(|(p, pp)| (p < 4).then_some(pp)),
        ),
        (
            pbool(),
            pbool(),
            // ~25% of rules assert a fresh fact from their RHS.
            (0u32..4, 0..TYPES.len(), 0i64..4).prop_map(|(p, ty, k)| (p == 0).then_some((ty, k))),
            pbool(),
        ),
    )
        .prop_map(
            |((salience, patterns, negated), (bind_fact, retract_f, assert_fact, diagnose))| {
                RulePlan {
                    salience,
                    patterns,
                    negated,
                    bind_fact,
                    retract_f,
                    assert_fact,
                    diagnose,
                }
            },
        )
}

fn op() -> impl Strategy<Value = Op> {
    // 4:2:1 assert/retract/run mix via a selector range (the shim's
    // `prop_oneof!` has no weighted form).
    (0u32..7, 0..TYPES.len(), 0i64..4, 0u32..2, 0usize..1_000_000).prop_map(|(sel, ty, k, s, j)| {
        match sel {
            0..=3 => Op::Assert { ty, k, s: s == 1 },
            4..=5 => Op::Retract(j),
            _ => Op::Run,
        }
    })
}

fn build_pattern(plan: &PatternPlan, pos: usize, earlier_binds_v: bool) -> Pattern {
    let mut p = Pattern::new(TYPES[plan.ty]);
    if let Some((cmp, val)) = plan.lit {
        let cmp = [Comparator::Eq, Comparator::Gt, Comparator::Le][cmp as usize];
        p = p.constrain("k", cmp, val as f64);
    }
    if plan.join_v && earlier_binds_v {
        p = p.constrain_var("k", Comparator::Eq, "v");
    }
    if plan.bind_v {
        p = p.bind("v", "k");
    }
    p.bind(&format!("w{pos}"), "k")
}

fn build_rule(i: usize, plan: &RulePlan) -> Rule {
    let name = format!("r{i}");
    let mut builder = Rule::builder(name.clone()).salience(plan.salience);
    let mut binds_v = false;
    for (pos, pp) in plan.patterns.iter().enumerate() {
        let mut p = build_pattern(pp, pos, binds_v);
        if pos == 0 && plan.bind_fact {
            p = p.bind_fact("f");
        }
        binds_v |= pp.bind_v;
        builder = builder.when(p);
    }
    if let Some(np) = &plan.negated {
        // Negated patterns contribute no bindings; reuse only the
        // constraint half of the plan.
        let mut p = Pattern::new(TYPES[np.ty]);
        if let Some((cmp, val)) = np.lit {
            let cmp = [Comparator::Eq, Comparator::Gt, Comparator::Le][cmp as usize];
            p = p.constrain("k", cmp, val as f64);
        }
        if np.join_v && binds_v {
            p = p.constrain_var("k", Comparator::Eq, "v");
        }
        builder = builder.when(p.negate());
    }

    // RHS references only variables the LHS is guaranteed to bind.
    let mut print = RhsExpr::Literal(Value::from(name.as_str()));
    for pos in 0..plan.patterns.len() {
        print = RhsExpr::Add(Box::new(print), Box::new(RhsExpr::Var(format!("w{pos}"))));
    }
    let mut stmts = vec![RhsStatement::Print(vec![print])];
    if plan.diagnose {
        stmts.push(RhsStatement::Diagnose {
            category: RhsExpr::Literal(Value::from("cat")),
            message: RhsExpr::Add(
                Box::new(RhsExpr::Literal(Value::from(name.as_str()))),
                Box::new(RhsExpr::Var("w0".to_string())),
            ),
            severity: Some(RhsExpr::Literal(Value::from(0.5))),
            recommendation: None,
        });
    }
    if let Some((ty, k)) = plan.assert_fact {
        stmts.push(RhsStatement::Assert {
            fact_type: TYPES[ty].to_string(),
            fields: vec![
                ("k".to_string(), RhsExpr::Literal(Value::from(k as f64))),
                ("s".to_string(), RhsExpr::Literal(Value::from("rhs"))),
            ],
        });
    }
    if plan.retract_f && plan.bind_fact {
        stmts.push(RhsStatement::Retract("f".to_string()));
    }
    builder.then_interpreted(stmts)
}

fn fact(ty: usize, k: i64, s: bool) -> Fact {
    Fact::new(TYPES[ty])
        .with("k", k as f64)
        .with("s", if s { "yes" } else { "no" })
}

fn snapshot(engine: &Engine) -> Vec<(rules::FactHandle, Fact)> {
    engine.facts().map(|(h, f)| (h, f.clone())).collect()
}

fn snapshot_ref(engine: &ReferenceEngine) -> Vec<(rules::FactHandle, Fact)> {
    engine.facts().map(|(h, f)| (h, f.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full differential property: random rulebase, random driver
    /// sequence, identical observable behaviour at every step.
    #[test]
    fn incremental_engine_equals_reference(
        plans in proptest::collection::vec(rule_plan(), 1..=4),
        ops in proptest::collection::vec(op(), 0..24),
    ) {
        let mut inc = Engine::new().with_cycle_limit(CYCLE_LIMIT);
        let mut reference = ReferenceEngine::new().with_cycle_limit(CYCLE_LIMIT);
        for (i, plan) in plans.iter().enumerate() {
            inc.add_rule(build_rule(i, plan)).unwrap();
            reference.add_rule(build_rule(i, plan)).unwrap();
        }

        let mut handles = Vec::new();
        for op in ops.iter().chain([&Op::Run]) {
            match op {
                Op::Assert { ty, k, s } => {
                    let hi = inc.assert_fact(fact(*ty, *k, *s));
                    let hr = reference.assert_fact(fact(*ty, *k, *s));
                    prop_assert_eq!(hi, hr);
                    handles.push(hi);
                }
                Op::Retract(j) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let h = handles[j % handles.len()];
                    let fi = inc.retract(h);
                    let fr = reference.retract(h);
                    prop_assert_eq!(fi, fr);
                }
                Op::Run => {
                    let ri = inc.run();
                    let rr = reference.run();
                    prop_assert_eq!(&ri, &rr);
                }
            }
            prop_assert_eq!(inc.fact_count(), reference.fact_count());
        }

        prop_assert_eq!(snapshot(&inc), snapshot_ref(&reference));
        prop_assert_eq!(inc.refraction_len(), reference.refraction_len());
    }

    /// Interleaving reset() keeps the engines aligned, including the
    /// monotonic handle counter.
    #[test]
    fn equivalence_survives_reset(
        plans in proptest::collection::vec(rule_plan(), 1..=3),
        ops_a in proptest::collection::vec(op(), 0..12),
        ops_b in proptest::collection::vec(op(), 0..12),
    ) {
        let mut inc = Engine::new().with_cycle_limit(CYCLE_LIMIT);
        let mut reference = ReferenceEngine::new().with_cycle_limit(CYCLE_LIMIT);
        for (i, plan) in plans.iter().enumerate() {
            inc.add_rule(build_rule(i, plan)).unwrap();
            reference.add_rule(build_rule(i, plan)).unwrap();
        }
        for phase in [&ops_a, &ops_b] {
            let mut handles = Vec::new();
            for op in phase.iter().chain([&Op::Run]) {
                match op {
                    Op::Assert { ty, k, s } => {
                        let hi = inc.assert_fact(fact(*ty, *k, *s));
                        let hr = reference.assert_fact(fact(*ty, *k, *s));
                        prop_assert_eq!(hi, hr);
                        handles.push(hi);
                    }
                    Op::Retract(j) => {
                        if handles.is_empty() {
                            continue;
                        }
                        let h = handles[j % handles.len()];
                        prop_assert_eq!(inc.retract(h), reference.retract(h));
                    }
                    Op::Run => {
                        prop_assert_eq!(inc.run(), reference.run());
                    }
                }
            }
            inc.reset();
            reference.reset();
        }
        // Post-reset, fresh handles must not collide with pre-reset ones.
        let hi = inc.assert_fact(fact(0, 0, false));
        let hr = reference.assert_fact(fact(0, 0, false));
        prop_assert_eq!(hi, hr);
    }
}
