//! The compiler's cost models.
//!
//! "Some compiler optimization modules compute a cost model to guide the
//! optimization strategies. For example, the loopnest optimizer has an
//! explicit processor model, a cache model and a parallel overhead
//! model." This module implements the three, plus a combined
//! [`CostModel`] with tunable weights — the weights are the hook the
//! feedback path ([`crate::feedback`]) adjusts from runtime diagnoses.

use crate::ir::RegionAttrs;
use serde::{Deserialize, Serialize};
use simulator::machine::MachineConfig;
use simulator::memory::{memory_costs, AccessProfile, PlacementStats};

/// Processor model: instruction scheduling and register pressure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorModel {
    /// Registers available before spilling starts.
    pub registers: f64,
    /// Cycles added per spilled value per invocation.
    pub spill_penalty: f64,
}

impl Default for ProcessorModel {
    fn default() -> Self {
        // Itanium has 128 general registers; a generous window.
        ProcessorModel {
            registers: 96.0,
            spill_penalty: 8.0,
        }
    }
}

impl ProcessorModel {
    /// Compute cycles for one invocation of a region: instructions
    /// divided by achievable issue (bounded by the region's ILP and the
    /// machine's width), plus spill costs when register pressure exceeds
    /// the file.
    pub fn compute_cycles(&self, attrs: &RegionAttrs, machine: &MachineConfig) -> f64 {
        let ipc = attrs.ilp.min(machine.issue_width).max(0.1);
        let base = attrs.instructions / ipc;
        let spills = (attrs.register_pressure - self.registers).max(0.0);
        base + spills * self.spill_penalty
    }
}

/// Cache model: predicted misses and inner-loop startup cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheModel;

impl CacheModel {
    /// Predicted memory stall cycles for one invocation, given an
    /// assumed NUMA placement.
    pub fn memory_cycles(
        &self,
        attrs: &RegionAttrs,
        machine: &MachineConfig,
        placement: &PlacementStats,
        contending: f64,
    ) -> f64 {
        let access = AccessProfile {
            refs: attrs.memory_refs,
            working_set: attrs.working_set,
            traversals: attrs.traversals,
        };
        memory_costs(&access, placement, machine, contending).stall_cycles
    }

    /// "Cycles required to start up inner loops": a pipeline fill cost
    /// per trip of the enclosing loop.
    pub fn startup_cycles(&self, attrs: &RegionAttrs) -> f64 {
        // ~8 cycles of software-pipelining prologue per loop entry.
        8.0 * attrs.invocations.max(1.0)
    }
}

/// Parallel overhead model: fork-join and reduction costs, used "to
/// decide which loop level to parallelize".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelModel {
    /// Cycles to fork and join a parallel region.
    pub fork_join: f64,
    /// Cycles per thread for a reduction combine.
    pub reduction_per_thread: f64,
}

impl Default for ParallelModel {
    fn default() -> Self {
        ParallelModel {
            fork_join: 8_000.0,
            reduction_per_thread: 300.0,
        }
    }
}

impl ParallelModel {
    /// Estimated cycles to run a loop of `total_work` compute cycles on
    /// `threads` threads, with `reductions` reduction variables.
    pub fn parallel_cycles(&self, total_work: f64, threads: usize, reductions: usize) -> f64 {
        if threads == 0 {
            return f64::INFINITY;
        }
        total_work / threads as f64
            + self.fork_join
            + self.reduction_per_thread * threads as f64 * reductions as f64
    }

    /// Whether parallelising is predicted profitable at all.
    pub fn profitable(&self, total_work: f64, threads: usize, reductions: usize) -> bool {
        threads > 1 && self.parallel_cycles(total_work, threads, reductions) < total_work
    }

    /// Chooses the loop level to parallelise. Each candidate describes
    /// parallelising the *same* computation at a different nest level:
    /// `(level_name, total_work, parallel_entries, reductions)`, where
    /// `parallel_entries` is how many times the parallel construct is
    /// entered (1 for the outermost loop, the outer trip count for an
    /// inner loop — each entry pays the fork-join). Returns the index of
    /// the cheapest candidate that beats serial execution, or `None`.
    pub fn choose_level(
        &self,
        candidates: &[(String, f64, f64, usize)],
        threads: usize,
    ) -> Option<usize> {
        if threads == 0 {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, (_, work, entries, reductions)) in candidates.iter().enumerate() {
            let cost = work / threads as f64
                + self.fork_join * entries
                + self.reduction_per_thread * threads as f64 * *reductions as f64 * entries;
            if cost >= *work || threads <= 1 {
                continue; // not profitable vs serial
            }
            if best.is_none_or(|(_, bc)| cost < bc) {
                best = Some((i, cost));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Weights combining the three models into one objective. The feedback
/// path tunes these: e.g. a locality diagnosis raises `cache_weight`,
/// which biases the optimizer toward transformations that cut predicted
/// memory cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Processor (compute) term weight.
    pub processor_weight: f64,
    /// Cache (memory) term weight.
    pub cache_weight: f64,
    /// Parallel overhead term weight.
    pub parallel_weight: f64,
    /// Processor sub-model.
    pub processor: ProcessorModel,
    /// Cache sub-model.
    pub cache: CacheModel,
    /// Parallel sub-model.
    pub parallel: ParallelModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            processor_weight: 1.0,
            cache_weight: 1.0,
            parallel_weight: 1.0,
            processor: ProcessorModel::default(),
            cache: CacheModel,
            parallel: ParallelModel::default(),
        }
    }
}

impl CostModel {
    /// Total predicted cycles for one invocation of a region on one
    /// thread with the given placement.
    pub fn region_cycles(
        &self,
        attrs: &RegionAttrs,
        machine: &MachineConfig,
        placement: &PlacementStats,
        contending: f64,
    ) -> f64 {
        self.processor_weight * self.processor.compute_cycles(attrs, machine)
            + self.cache_weight
                * (self
                    .cache
                    .memory_cycles(attrs, machine, placement, contending)
                    + self.cache.startup_cycles(attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::altix300()
    }

    fn attrs() -> RegionAttrs {
        RegionAttrs {
            instructions: 60_000.0,
            ilp: 3.0,
            working_set: 512.0 * 1024.0,
            memory_refs: 64_000.0,
            traversals: 2.0,
            register_pressure: 40.0,
            ..Default::default()
        }
    }

    #[test]
    fn compute_cycles_bounded_by_issue_width() {
        let m = machine();
        let proc = ProcessorModel::default();
        let mut a = attrs();
        a.ilp = 100.0; // cannot exceed machine width (6)
        let c = proc.compute_cycles(&a, &m);
        assert!((c - a.instructions / 6.0).abs() < 1e-9);
    }

    #[test]
    fn register_pressure_adds_spill_cost() {
        let m = machine();
        let proc = ProcessorModel::default();
        let mut a = attrs();
        let base = proc.compute_cycles(&a, &m);
        a.register_pressure = proc.registers + 10.0;
        let spilled = proc.compute_cycles(&a, &m);
        assert!((spilled - base - 10.0 * proc.spill_penalty).abs() < 1e-9);
    }

    #[test]
    fn cache_model_punishes_remote_placement() {
        let m = machine();
        let cache = CacheModel;
        let a = attrs();
        let local = cache.memory_cycles(&a, &m, &PlacementStats::all_local(), 1.0);
        let remote = cache.memory_cycles(
            &a,
            &m,
            &PlacementStats {
                remote_fraction: 1.0,
                mean_remote_hops: 3.0,
            },
            8.0,
        );
        assert!(remote > local);
    }

    #[test]
    fn parallel_model_amortises_and_overheads() {
        let pm = ParallelModel::default();
        // Big loop: parallel wins.
        assert!(pm.profitable(1e8, 8, 0));
        // Tiny loop: fork-join dominates.
        assert!(!pm.profitable(1_000.0, 8, 0));
        // Reductions push the crossover outward.
        let no_red = pm.parallel_cycles(1e6, 16, 0);
        let with_red = pm.parallel_cycles(1e6, 16, 4);
        assert!(with_red > no_red);
        assert_eq!(pm.parallel_cycles(1e6, 0, 0), f64::INFINITY);
    }

    #[test]
    fn choose_level_prefers_outer_loops() {
        let pm = ParallelModel::default();
        // Same 1e8 cycles of work; the inner level re-enters the
        // parallel construct 1000 times (once per outer iteration).
        let candidates = vec![
            ("outer".to_string(), 1e8, 1.0, 0),
            ("inner".to_string(), 1e8, 1000.0, 0),
        ];
        assert_eq!(pm.choose_level(&candidates, 16), Some(0));
        // Nothing profitable at 1 thread.
        assert_eq!(pm.choose_level(&candidates, 1), None);
        assert_eq!(pm.choose_level(&candidates, 0), None);
        // Unprofitable candidates are skipped entirely.
        let tiny = vec![("t".to_string(), 100.0, 1.0, 0)];
        assert_eq!(pm.choose_level(&tiny, 16), None);
        // With a reduction per entry, inner-level parallelisation is
        // penalised even harder.
        let with_red = vec![
            ("outer".to_string(), 1e8, 1.0, 1),
            ("inner".to_string(), 1e8, 1000.0, 1),
        ];
        assert_eq!(pm.choose_level(&with_red, 16), Some(0));
    }

    #[test]
    fn weights_steer_the_combined_model() {
        let m = machine();
        let a = attrs();
        let placement = PlacementStats {
            remote_fraction: 0.8,
            mean_remote_hops: 2.0,
        };
        let balanced = CostModel::default();
        let memory_hunter = CostModel {
            cache_weight: 10.0,
            ..Default::default()
        };
        let c1 = balanced.region_cycles(&a, &m, &placement, 4.0);
        let c2 = memory_hunter.region_cycles(&a, &m, &placement, 4.0);
        assert!(c2 > c1, "raised cache weight must raise predicted cost");
    }
}
