//! Selective instrumentation.
//!
//! The paper: "Our selective instrumentation method is designed to create
//! a scoring mechanism for regions of interest based on their importance
//! in the code and call graph. We want to avoid instrumenting regions of
//! code that have small weights (e.g. few basic blocks, statements) and
//! are invoked many times."
//!
//! The scorer weighs a region's size (basic blocks, statements) against
//! its invocation count and the per-probe overhead; regions whose probe
//! cost would exceed a configured fraction of their own work are left
//! uninstrumented.

use crate::ir::{Program, Region, RegionId, RegionKind};
use serde::{Deserialize, Serialize};

/// Instrumentation selection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectiveInstrumenter {
    /// Cycles one enter/exit probe pair costs.
    pub probe_cost: f64,
    /// Maximum tolerable probe overhead as a fraction of a region's own
    /// dynamic work (e.g. 0.05 = 5%).
    pub max_overhead_fraction: f64,
    /// Instrument procedures regardless of score (the paper's first runs
    /// "focus on procedure level instrumentation").
    pub always_procedures: bool,
    /// Region kinds eligible for instrumentation.
    pub kinds: InstrumentKinds,
}

/// Which region kinds the pass may instrument (the compiler flags the
/// paper mentions: "specifying the types of regions we want to
/// instrument").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentKinds {
    /// Instrument procedures.
    pub procedures: bool,
    /// Instrument loops.
    pub loops: bool,
    /// Instrument branches.
    pub branches: bool,
    /// Instrument callsites.
    pub callsites: bool,
}

impl InstrumentKinds {
    /// Procedures only — the paper's initial profiling run.
    pub fn procedures_only() -> Self {
        InstrumentKinds {
            procedures: true,
            loops: false,
            branches: false,
            callsites: false,
        }
    }

    /// Everything — the paper's in-depth second run.
    pub fn all() -> Self {
        InstrumentKinds {
            procedures: true,
            loops: true,
            branches: true,
            callsites: true,
        }
    }

    fn allows(&self, kind: RegionKind) -> bool {
        match kind {
            RegionKind::Procedure => self.procedures,
            RegionKind::Loop => self.loops,
            RegionKind::Branch => self.branches,
            RegionKind::Callsite => self.callsites,
        }
    }
}

impl Default for SelectiveInstrumenter {
    fn default() -> Self {
        SelectiveInstrumenter {
            probe_cost: 200.0,
            max_overhead_fraction: 0.05,
            always_procedures: true,
            kinds: InstrumentKinds::all(),
        }
    }
}

/// Result of the instrumentation pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentationPlan {
    /// Regions that receive probes, with their scores.
    pub probed: Vec<(RegionId, f64)>,
    /// Regions skipped as too small/hot, with their scores.
    pub skipped: Vec<(RegionId, f64)>,
    /// Estimated total probe overhead in cycles.
    pub estimated_overhead: f64,
}

impl InstrumentationPlan {
    /// Whether a region is probed.
    pub fn is_probed(&self, id: RegionId) -> bool {
        self.probed.iter().any(|(p, _)| *p == id)
    }
}

impl SelectiveInstrumenter {
    /// Scores a region: work per probe dollar. Higher is more worth
    /// instrumenting. Small regions invoked many times score low.
    pub fn score(&self, region: &Region) -> f64 {
        let weight = (region.attrs.basic_blocks as f64 + region.attrs.statements as f64)
            * region.attrs.instructions;
        let probe_total = self.probe_cost * region.attrs.invocations.max(1.0);
        weight / probe_total
    }

    /// Runs the selection over a program.
    pub fn plan(&self, program: &Program) -> InstrumentationPlan {
        let mut probed = Vec::new();
        let mut skipped = Vec::new();
        let mut overhead = 0.0;
        for id in program.all() {
            let region = program.region(id);
            if !self.kinds.allows(region.kind) {
                continue;
            }
            let score = self.score(region);
            let own_work = region.attrs.instructions * region.attrs.invocations.max(1.0);
            let probe_total = self.probe_cost * region.attrs.invocations.max(1.0);
            let tolerable = probe_total <= own_work * self.max_overhead_fraction;
            let forced = self.always_procedures && region.kind == RegionKind::Procedure;
            if tolerable || forced {
                overhead += probe_total;
                probed.push((id, score));
            } else {
                skipped.push((id, score));
            }
        }
        // Highest-value probes first, as the compiler emits them.
        probed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        skipped.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        InstrumentationPlan {
            probed,
            skipped,
            estimated_overhead: overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::RegionAttrs;

    fn program() -> Program {
        let mut p = Program::new();
        let main = p.add_procedure(
            "main",
            RegionAttrs {
                basic_blocks: 50,
                statements: 200,
                instructions: 1e6,
                invocations: 1.0,
                ..Default::default()
            },
        );
        // A big compute loop: few invocations, lots of work.
        p.add_child(
            main,
            "big_loop",
            RegionKind::Loop,
            RegionAttrs {
                basic_blocks: 20,
                statements: 80,
                instructions: 1e7,
                invocations: 10.0,
                ..Default::default()
            },
        );
        // A tiny accessor called millions of times: probing it would
        // dominate its cost.
        p.add_child(
            main,
            "tiny_hot",
            RegionKind::Loop,
            RegionAttrs {
                basic_blocks: 1,
                statements: 2,
                instructions: 20.0,
                invocations: 5e6,
                ..Default::default()
            },
        );
        p
    }

    #[test]
    fn big_regions_probed_tiny_hot_regions_skipped() {
        let p = program();
        let inst = SelectiveInstrumenter::default();
        let plan = inst.plan(&p);
        let big = p.find("big_loop").unwrap();
        let tiny = p.find("tiny_hot").unwrap();
        assert!(plan.is_probed(big));
        assert!(!plan.is_probed(tiny));
        assert_eq!(plan.skipped.iter().filter(|(id, _)| *id == tiny).count(), 1);
    }

    #[test]
    fn procedures_forced_even_when_expensive() {
        let mut p = Program::new();
        p.add_procedure(
            "hot_proc",
            RegionAttrs {
                instructions: 10.0,
                invocations: 1e7,
                ..Default::default()
            },
        );
        let inst = SelectiveInstrumenter::default();
        let plan = inst.plan(&p);
        assert!(plan.is_probed(p.find("hot_proc").unwrap()));
        let strict = SelectiveInstrumenter {
            always_procedures: false,
            ..Default::default()
        };
        let plan2 = strict.plan(&p);
        assert!(!plan2.is_probed(p.find("hot_proc").unwrap()));
    }

    #[test]
    fn kind_filter_restricts_selection() {
        let p = program();
        let proc_only = SelectiveInstrumenter {
            kinds: InstrumentKinds::procedures_only(),
            ..Default::default()
        };
        let plan = proc_only.plan(&p);
        assert!(plan.is_probed(p.find("main").unwrap()));
        assert!(!plan.is_probed(p.find("big_loop").unwrap()));
        // The loop is not even listed as skipped: it was never eligible.
        assert!(plan
            .skipped
            .iter()
            .all(|(id, _)| *id != p.find("big_loop").unwrap()));
    }

    #[test]
    fn score_penalises_invocations() {
        let inst = SelectiveInstrumenter::default();
        let mut cheap = Region {
            name: "r".into(),
            kind: RegionKind::Loop,
            attrs: RegionAttrs {
                instructions: 1000.0,
                invocations: 1.0,
                ..Default::default()
            },
            children: vec![],
            parent: None,
        };
        let low_invocations = inst.score(&cheap);
        cheap.attrs.invocations = 1000.0;
        let high_invocations = inst.score(&cheap);
        assert!(low_invocations > high_invocations);
    }

    #[test]
    fn overhead_accumulates_per_probe() {
        let p = program();
        let inst = SelectiveInstrumenter::default();
        let plan = inst.plan(&p);
        // main (1 call) + big_loop (10 calls) at 200 cycles each.
        assert_eq!(plan.estimated_overhead, 200.0 * 11.0);
    }

    #[test]
    fn probed_list_sorted_by_score() {
        let p = program();
        let plan = SelectiveInstrumenter::default().plan(&p);
        for w in plan.probed.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
