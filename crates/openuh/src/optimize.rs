//! Optimization levels O0–O3 as attribute transformations.
//!
//! The paper's power study compiles GenIDLEST at O0 through O3 and
//! observes: instruction counts fall sharply with optimisation; IPC
//! rises at O1 (scheduling/peephole on straight-line code), falls at O2
//! (aggressive instruction *removal* — dead store elimination, partial
//! redundancy elimination — deletes easily-overlapped instructions), and
//! rises again at O3 (loop-nest optimisation, vectorisation and
//! software pipelining increase execution overlap).
//!
//! This module models each level as a set of named transformations with
//! multiplicative effects on region attributes. The factor values are
//! the model's calibration — chosen to reproduce the *qualitative*
//! O0→O3 trajectory reported for the OpenUH compiler (Table I), not any
//! particular machine's absolute numbers.

use crate::ir::{Program, RegionAttrs};
use serde::{Deserialize, Serialize};

/// A compiler optimisation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OptLevel {
    /// All optimisations disabled.
    O0,
    /// Minimal: instruction scheduling and peephole on straight-line code.
    O1,
    /// Aggressive scalar: dead store elimination, partial redundancy
    /// elimination, copy propagation, common subexpression elimination.
    O2,
    /// O2 plus loop-nest optimisation: vectorisation, loop fusion/fission,
    /// software pipelining.
    O3,
}

impl OptLevel {
    /// All levels in ascending order.
    pub fn all() -> [OptLevel; 4] {
        [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3]
    }

    /// Conventional flag spelling.
    pub fn flag(&self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        }
    }

    /// The named transformations this level applies (cumulative with
    /// lower levels), for reports and tests.
    pub fn transformations(&self) -> &'static [&'static str] {
        match self {
            OptLevel::O0 => &[],
            OptLevel::O1 => &["instruction-scheduling", "peephole"],
            OptLevel::O2 => &[
                "instruction-scheduling",
                "peephole",
                "dead-store-elimination",
                "partial-redundancy-elimination",
                "copy-propagation",
                "common-subexpression-elimination",
            ],
            OptLevel::O3 => &[
                "instruction-scheduling",
                "peephole",
                "dead-store-elimination",
                "partial-redundancy-elimination",
                "copy-propagation",
                "common-subexpression-elimination",
                "loop-nest-optimization",
                "vectorization",
                "software-pipelining",
            ],
        }
    }

    /// The attribute effect of this level relative to O0.
    pub fn effect(&self) -> OptimizationEffect {
        match self {
            // Identity.
            OptLevel::O0 => OptimizationEffect {
                instruction_scale: 1.0,
                ilp_scale: 1.0,
                traffic_scale: 1.0,
                issue_ratio: 1.30,
            },
            // Scheduling/peephole: fewer instructions, better overlap.
            OptLevel::O1 => OptimizationEffect {
                instruction_scale: 0.47,
                ilp_scale: 1.40,
                traffic_scale: 0.95,
                issue_ratio: 1.30,
            },
            // Scalar optimisation removes the redundant instructions that
            // previously padded the pipeline: the count collapses and the
            // surviving instructions are *harder* to overlap.
            OptLevel::O2 => OptimizationEffect {
                instruction_scale: 0.059,
                ilp_scale: 0.86,
                traffic_scale: 0.80,
                issue_ratio: 1.36,
            },
            // Loop-nest optimisation restores overlap via vectorisation
            // and software pipelining and improves locality.
            OptLevel::O3 => OptimizationEffect {
                instruction_scale: 0.055,
                ilp_scale: 1.21,
                traffic_scale: 0.55,
                issue_ratio: 1.40,
            },
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.flag().trim_start_matches('-'))
    }
}

/// Multiplicative effects of an optimisation level on region attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizationEffect {
    /// Scale on dynamic instruction count (completed).
    pub instruction_scale: f64,
    /// Scale on exploitable ILP.
    pub ilp_scale: f64,
    /// Scale on memory traffic (references and traversals) from
    /// locality transformations.
    pub traffic_scale: f64,
    /// Issued-to-completed instruction ratio (speculation and
    /// mispredicted issue slots).
    pub issue_ratio: f64,
}

impl OptimizationEffect {
    /// Applies the effect to one region's attributes.
    pub fn apply(&self, attrs: &RegionAttrs) -> RegionAttrs {
        RegionAttrs {
            instructions: attrs.instructions * self.instruction_scale,
            ilp: attrs.ilp * self.ilp_scale,
            memory_refs: attrs.memory_refs * self.traffic_scale,
            traversals: (attrs.traversals * self.traffic_scale).max(1.0),
            ..*attrs
        }
    }
}

/// Compiles a program at a level: every region's attributes are
/// transformed. Returns the new program (the input is untouched, like a
/// real compiler reading immutable source).
pub fn compile(program: &Program, level: OptLevel) -> Program {
    let effect = level.effect();
    let mut out = program.clone();
    for id in program.all() {
        let attrs = out.region(id).attrs;
        out.region_mut(id).attrs = effect.apply(&attrs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RegionAttrs, RegionKind};

    fn program() -> Program {
        let mut p = Program::new();
        let main = p.add_procedure(
            "main",
            RegionAttrs {
                instructions: 1e9,
                ilp: 1.2,
                fp_fraction: 0.3,
                memory_refs: 2e8,
                traversals: 10.0,
                ..Default::default()
            },
        );
        p.add_child(
            main,
            "kernel",
            RegionKind::Loop,
            RegionAttrs {
                instructions: 5e9,
                ilp: 1.5,
                fp_fraction: 0.5,
                memory_refs: 1e9,
                traversals: 20.0,
                ..Default::default()
            },
        );
        p
    }

    #[test]
    fn o0_is_identity() {
        let p = program();
        let c = compile(&p, OptLevel::O0);
        assert_eq!(p, c);
    }

    #[test]
    fn instruction_count_collapses_with_level() {
        let p = program();
        let counts: Vec<f64> = OptLevel::all()
            .iter()
            .map(|&l| {
                let c = compile(&p, l);
                c.dynamic_instructions(c.roots()[0])
            })
            .collect();
        // Strictly decreasing O0 → O3.
        for w in counts.windows(2) {
            assert!(w[1] < w[0]);
        }
        // O2 cuts more than 10× vs O0 (the DSE/PRE cliff in Table I).
        assert!(counts[2] < counts[0] / 10.0);
    }

    #[test]
    fn ipc_dips_at_o2_and_recovers_at_o3() {
        let e = OptLevel::all().map(|l| l.effect());
        assert!(e[1].ilp_scale > e[0].ilp_scale); // O1 up
        assert!(e[2].ilp_scale < 1.0); // O2 below baseline
        assert!(e[3].ilp_scale > 1.0); // O3 recovers
        assert!(e[3].ilp_scale < e[1].ilp_scale); // but below O1's bump
    }

    #[test]
    fn o3_reduces_memory_traffic_most() {
        let p = program();
        let kernel = p.find("kernel").unwrap();
        let refs: Vec<f64> = OptLevel::all()
            .iter()
            .map(|&l| compile(&p, l).region(kernel).attrs.memory_refs)
            .collect();
        assert!(refs[3] < refs[2]);
        assert!(refs[2] < refs[0]);
    }

    #[test]
    fn transformations_accumulate() {
        assert!(OptLevel::O0.transformations().is_empty());
        let o1 = OptLevel::O1.transformations();
        let o2 = OptLevel::O2.transformations();
        let o3 = OptLevel::O3.transformations();
        for t in o1 {
            assert!(o2.contains(t));
        }
        for t in o2 {
            assert!(o3.contains(t));
        }
        assert!(o3.contains(&"vectorization"));
        assert!(o2.contains(&"dead-store-elimination"));
        assert!(!o1.contains(&"dead-store-elimination"));
    }

    #[test]
    fn traversals_never_drop_below_one() {
        let mut attrs = RegionAttrs {
            traversals: 1.0,
            ..Default::default()
        };
        attrs = OptLevel::O3.effect().apply(&attrs);
        assert_eq!(attrs.traversals, 1.0);
    }

    #[test]
    fn display_and_flags() {
        assert_eq!(OptLevel::O2.flag(), "-O2");
        assert_eq!(OptLevel::O3.to_string(), "O3");
    }
}
