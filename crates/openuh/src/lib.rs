//! A compiler model in the role OpenUH plays in the paper.
//!
//! OpenUH contributes four capabilities to the integrated pipeline; this
//! crate implements a working model of each:
//!
//! * **Region IR** ([`ir`]) — a WHIRL-like region tree (procedures,
//!   loops, branches, callsites) carrying the static attributes the cost
//!   models read: instruction counts, FP density, trip counts, working
//!   sets.
//! * **Compile-time instrumentation** ([`instrument`]) — the selective
//!   instrumentation pass of Hernandez et al. (paper ref 7): a scoring
//!   that probes regions of interest while refusing to instrument small,
//!   hot regions whose probe overhead would distort the measurement.
//! * **Cost models** ([`cost`]) — the loop-nest optimizer's explicit
//!   processor model (issue width, ILP, register pressure), cache model
//!   (predicted misses and startup cycles) and parallel overhead model
//!   (fork-join and reduction costs, which loop level to parallelise).
//! * **Optimization levels** ([`optimize`]) — O0–O3 as attribute
//!   transformations (instruction-count reduction, ILP/overlap increase,
//!   loop-nest locality improvement), driving the power/energy study.
//! * **Feedback ingestion** ([`feedback`]) — the paper's "future work"
//!   loop, implemented: analysis diagnoses re-weight the cost models and
//!   produce concrete transformation suggestions.
//! * **Frequency-based feedback** ([`frequency`]) — the feedback path
//!   the paper says already works: measured branch/loop/callsite counts
//!   correct static estimates and drive inlining, unrolling and branch
//!   layout.

#![warn(missing_docs)]

pub mod cost;
pub mod feedback;
pub mod frequency;
pub mod instrument;
pub mod ir;
pub mod optimize;

pub use cost::{CacheModel, CostModel, ParallelModel, ProcessorModel};
pub use feedback::{FeedbackPlan, OptimizationPriority};
pub use frequency::{FrequencyDecision, FrequencyProfile};
pub use instrument::{InstrumentationPlan, SelectiveInstrumenter};
pub use ir::{Program, Region, RegionAttrs, RegionId, RegionKind};
pub use optimize::{OptLevel, OptimizationEffect};
