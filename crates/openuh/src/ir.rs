//! WHIRL-lite region IR.
//!
//! OpenUH lowers programs through five levels of the WHIRL IR; every
//! analysis and optimisation phase works on regions — procedures, loops,
//! branches and callsites. This model keeps the part the integration
//! needs: a region tree with the static attributes the cost models and
//! the instrumentation scorer consume.

use serde::{Deserialize, Serialize};

/// Identifier of a region within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// The kind of a program region, matching the constructs OpenUH's
/// instrumentation module covers ("procedures, loops, branches,
/// callsites").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// A procedure / function body.
    Procedure,
    /// A loop nest level.
    Loop,
    /// A conditional branch arm.
    Branch,
    /// A call site.
    Callsite,
}

impl RegionKind {
    /// Lower-case tag used in profiles and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            RegionKind::Procedure => "procedure",
            RegionKind::Loop => "loop",
            RegionKind::Branch => "branch",
            RegionKind::Callsite => "callsite",
        }
    }
}

/// Static attributes of a region, per invocation unless noted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionAttrs {
    /// Basic blocks in the region body.
    pub basic_blocks: u32,
    /// Statements in the region body.
    pub statements: u32,
    /// Dynamic instructions executed per invocation.
    pub instructions: f64,
    /// Fraction of instructions that are floating-point.
    pub fp_fraction: f64,
    /// Average exploitable instruction-level parallelism (independent
    /// instructions per cycle the schedule exposes).
    pub ilp: f64,
    /// Estimated invocation count (from static heuristics or feedback).
    pub invocations: f64,
    /// Loop trip count (1 for non-loops).
    pub trip_count: f64,
    /// Bytes of data touched per invocation.
    pub working_set: f64,
    /// Memory references per invocation.
    pub memory_refs: f64,
    /// Passes over the working set per invocation.
    pub traversals: f64,
    /// Live values competing for registers (register pressure proxy).
    pub register_pressure: f64,
}

impl Default for RegionAttrs {
    fn default() -> Self {
        RegionAttrs {
            basic_blocks: 1,
            statements: 1,
            instructions: 100.0,
            fp_fraction: 0.0,
            ilp: 1.5,
            invocations: 1.0,
            trip_count: 1.0,
            working_set: 1024.0,
            memory_refs: 32.0,
            traversals: 1.0,
            register_pressure: 16.0,
        }
    }
}

/// A node in the region tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region name (procedure name, `proc::loop1`, ...).
    pub name: String,
    /// Region kind.
    pub kind: RegionKind,
    /// Static attributes.
    pub attrs: RegionAttrs,
    /// Child region ids.
    pub children: Vec<RegionId>,
    /// Parent region id (`None` for roots).
    pub parent: Option<RegionId>,
}

/// A program: a forest of regions rooted at procedures.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    regions: Vec<Region>,
    roots: Vec<RegionId>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a root procedure.
    pub fn add_procedure(&mut self, name: &str, attrs: RegionAttrs) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            name: name.to_string(),
            kind: RegionKind::Procedure,
            attrs,
            children: Vec::new(),
            parent: None,
        });
        self.roots.push(id);
        id
    }

    /// Adds a child region under `parent`.
    pub fn add_child(
        &mut self,
        parent: RegionId,
        name: &str,
        kind: RegionKind,
        attrs: RegionAttrs,
    ) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            name: name.to_string(),
            kind,
            attrs,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.regions[parent.0 as usize].children.push(id);
        id
    }

    /// Region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Mutable region by id.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id.0 as usize]
    }

    /// Finds a region by name.
    pub fn find(&self, name: &str) -> Option<RegionId> {
        self.regions
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegionId(i as u32))
    }

    /// Root procedures.
    pub fn roots(&self) -> &[RegionId] {
        &self.roots
    }

    /// All region ids in insertion order.
    pub fn all(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions.len() as u32).map(RegionId)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the program has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Depth-first walk from a root, calling `f` with (id, depth).
    pub fn walk(&self, root: RegionId, f: &mut impl FnMut(RegionId, usize)) {
        fn rec(p: &Program, id: RegionId, depth: usize, f: &mut impl FnMut(RegionId, usize)) {
            f(id, depth);
            for &c in &p.region(id).children {
                rec(p, c, depth + 1, f);
            }
        }
        rec(self, root, 0, f);
    }

    /// Total dynamic instructions of a region including its children,
    /// weighting each child by its invocation count relative to the
    /// parent's.
    pub fn dynamic_instructions(&self, id: RegionId) -> f64 {
        let r = self.region(id);
        let own = r.attrs.instructions * r.attrs.invocations;
        own + r
            .children
            .iter()
            .map(|&c| self.dynamic_instructions(c))
            .sum::<f64>()
    }

    /// Callpath-style name (`proc => loop`), matching profile events.
    pub fn callpath(&self, id: RegionId) -> String {
        let mut parts = vec![self.region(id).name.clone()];
        let mut cur = self.region(id).parent;
        while let Some(p) = cur {
            parts.push(self.region(p).name.clone());
            cur = self.region(p).parent;
        }
        parts.reverse();
        parts.join(" => ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Program, RegionId, RegionId, RegionId) {
        let mut p = Program::new();
        let main = p.add_procedure(
            "main",
            RegionAttrs {
                instructions: 1000.0,
                ..Default::default()
            },
        );
        let outer = p.add_child(
            main,
            "outer_loop",
            RegionKind::Loop,
            RegionAttrs {
                instructions: 500.0,
                invocations: 10.0,
                trip_count: 100.0,
                ..Default::default()
            },
        );
        let inner = p.add_child(
            outer,
            "inner_loop",
            RegionKind::Loop,
            RegionAttrs {
                instructions: 50.0,
                invocations: 1000.0,
                ..Default::default()
            },
        );
        (p, main, outer, inner)
    }

    #[test]
    fn tree_structure_and_lookup() {
        let (p, main, outer, inner) = sample();
        assert_eq!(p.len(), 3);
        assert_eq!(p.roots(), &[main]);
        assert_eq!(p.region(outer).parent, Some(main));
        assert_eq!(p.region(main).children, vec![outer]);
        assert_eq!(p.find("inner_loop"), Some(inner));
        assert_eq!(p.find("nope"), None);
        assert_eq!(p.region(inner).kind.tag(), "loop");
    }

    #[test]
    fn walk_visits_depth_first() {
        let (p, main, ..) = sample();
        let mut visited = Vec::new();
        p.walk(main, &mut |id, depth| {
            visited.push((p.region(id).name.clone(), depth));
        });
        assert_eq!(
            visited,
            vec![
                ("main".to_string(), 0),
                ("outer_loop".to_string(), 1),
                ("inner_loop".to_string(), 2),
            ]
        );
    }

    #[test]
    fn dynamic_instructions_roll_up() {
        let (p, main, outer, inner) = sample();
        assert_eq!(p.dynamic_instructions(inner), 50.0 * 1000.0);
        assert_eq!(p.dynamic_instructions(outer), 500.0 * 10.0 + 50_000.0);
        assert_eq!(p.dynamic_instructions(main), 1000.0 + 5000.0 + 50_000.0);
    }

    #[test]
    fn callpath_naming() {
        let (p, _, _, inner) = sample();
        assert_eq!(p.callpath(inner), "main => outer_loop => inner_loop");
    }

    #[test]
    fn serde_roundtrip() {
        let (p, ..) = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
