//! Feedback from automated analysis into the compiler's cost models.
//!
//! The paper's integration diagram (Figure 3) marks this path "future":
//! "In the future, we hope to integrate the tools with a feedback
//! optimization loop to improve the compiler cost models". This module
//! implements that loop: structured diagnoses from the analysis layer
//! re-weight the combined [`CostModel`] and are
//! translated into per-region transformation suggestions.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the compiler should prioritise, derived from diagnoses. Mirrors
/// the paper's customisable cost-model goals: "reducing cache misses,
/// register pressure, instruction scheduling, pipeline stalls and
/// parallel overheads", plus the power/energy goals of §III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizationPriority {
    /// Reduce cache misses / improve locality.
    CacheMisses,
    /// Reduce pipeline stalls (scheduling).
    PipelineStalls,
    /// Reduce parallel overheads (scheduling, fork-join).
    ParallelOverheads,
    /// Compile for low power dissipation.
    LowPower,
    /// Compile for low energy consumption.
    LowEnergy,
}

/// One concrete suggestion for a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suggestion {
    /// Region (event) name the suggestion applies to.
    pub region: String,
    /// The transformation or directive to apply.
    pub action: String,
    /// Why — carried from the diagnosis for explanation.
    pub reason: String,
}

/// The digested feedback: adjusted weights plus suggestions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeedbackPlan {
    /// Per-region suggestions.
    pub suggestions: Vec<Suggestion>,
    /// Cost-model weight multipliers applied.
    pub weight_changes: BTreeMap<String, f64>,
}

/// A minimal, crate-local view of an analysis diagnosis (kept structural
/// so `openuh` does not depend on the analysis crate above it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisInput {
    /// Category tag, e.g. `"load-imbalance"`, `"memory-locality"`,
    /// `"stalls"`, `"serial-bottleneck"`, `"power"`, `"energy"`.
    pub category: String,
    /// Event / region name the diagnosis is about.
    pub event: String,
    /// Severity in `[0, 1]`.
    pub severity: f64,
    /// Recommendation text from the rule, if any.
    pub recommendation: Option<String>,
}

/// Ingests diagnoses: re-weights the cost model in place and produces a
/// feedback plan.
pub fn ingest(model: &mut CostModel, diagnoses: &[DiagnosisInput]) -> FeedbackPlan {
    let mut plan = FeedbackPlan::default();
    for d in diagnoses {
        let severity = d.severity.clamp(0.0, 1.0);
        match d.category.as_str() {
            "memory-locality" | "cache" => {
                // Bias the optimizer toward locality transformations:
                // "focus on improving the L3 optimizations by targeting
                // reduction of the cycles predicted in the cache model".
                let factor = 1.0 + severity;
                model.cache_weight *= factor;
                *plan
                    .weight_changes
                    .entry("cache_weight".to_string())
                    .or_insert(1.0) *= factor;
                plan.suggestions.push(Suggestion {
                    region: d.event.clone(),
                    action: "apply loop-nest locality optimization; parallelize \
                             initialization for first-touch placement"
                        .to_string(),
                    reason: d
                        .recommendation
                        .clone()
                        .unwrap_or_else(|| "high remote-memory access ratio".to_string()),
                });
            }
            "stalls" | "pipeline" => {
                let factor = 1.0 + severity;
                model.processor_weight *= factor;
                *plan
                    .weight_changes
                    .entry("processor_weight".to_string())
                    .or_insert(1.0) *= factor;
                plan.suggestions.push(Suggestion {
                    region: d.event.clone(),
                    action: "re-schedule instructions; raise software pipelining priority"
                        .to_string(),
                    reason: d
                        .recommendation
                        .clone()
                        .unwrap_or_else(|| "high stall-per-cycle rate".to_string()),
                });
            }
            "load-imbalance" | "parallel-overhead" => {
                let factor = 1.0 + severity;
                model.parallel_weight *= factor;
                *plan
                    .weight_changes
                    .entry("parallel_weight".to_string())
                    .or_insert(1.0) *= factor;
                plan.suggestions.push(Suggestion {
                    region: d.event.clone(),
                    action: d
                        .recommendation
                        .clone()
                        .unwrap_or_else(|| "use dynamic scheduling with a small chunk".into()),
                    reason: "per-thread work distribution is uneven".to_string(),
                });
            }
            "serial-bottleneck" => {
                plan.suggestions.push(Suggestion {
                    region: d.event.clone(),
                    action: "parallelize the serial section (distribute copies across threads)"
                        .to_string(),
                    reason: d
                        .recommendation
                        .clone()
                        .unwrap_or_else(|| "sequential region limits scalability".to_string()),
                });
            }
            "power" | "energy" => {
                plan.suggestions.push(Suggestion {
                    region: d.event.clone(),
                    action: d.recommendation.clone().unwrap_or_else(|| {
                        "select optimization level per power/energy goal".into()
                    }),
                    reason: format!("{} priority from power model", d.category),
                });
            }
            _ => {
                // Unknown category: record the suggestion verbatim if the
                // rule supplied one; never drop knowledge silently.
                if let Some(rec) = &d.recommendation {
                    plan.suggestions.push(Suggestion {
                        region: d.event.clone(),
                        action: rec.clone(),
                        reason: d.category.clone(),
                    });
                }
            }
        }
    }
    plan
}

/// Maps a priority to the optimisation level the power study's results
/// recommend: "O0 should be enabled for low power, O3 enabled for low
/// energy, and O2 for both power and energy efficiency".
pub fn level_for_priority(priority: OptimizationPriority) -> crate::optimize::OptLevel {
    use crate::optimize::OptLevel;
    match priority {
        OptimizationPriority::LowPower => OptLevel::O0,
        OptimizationPriority::LowEnergy => OptLevel::O3,
        OptimizationPriority::CacheMisses => OptLevel::O3,
        OptimizationPriority::PipelineStalls => OptLevel::O2,
        OptimizationPriority::ParallelOverheads => OptLevel::O2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(category: &str, event: &str, severity: f64) -> DiagnosisInput {
        DiagnosisInput {
            category: category.to_string(),
            event: event.to_string(),
            severity,
            recommendation: None,
        }
    }

    #[test]
    fn locality_diagnosis_raises_cache_weight() {
        let mut model = CostModel::default();
        let plan = ingest(&mut model, &[diag("memory-locality", "matxvec", 0.5)]);
        assert!(model.cache_weight > 1.4);
        assert_eq!(model.processor_weight, 1.0);
        assert_eq!(plan.suggestions.len(), 1);
        assert!(plan.suggestions[0].action.contains("first-touch"));
        assert!(plan.weight_changes.contains_key("cache_weight"));
    }

    #[test]
    fn stall_diagnosis_raises_processor_weight() {
        let mut model = CostModel::default();
        ingest(&mut model, &[diag("stalls", "pc_jac_glb", 0.3)]);
        assert!((model.processor_weight - 1.3).abs() < 1e-9);
        assert_eq!(model.cache_weight, 1.0);
    }

    #[test]
    fn imbalance_diagnosis_carries_rule_recommendation() {
        let mut model = CostModel::default();
        let mut d = diag("load-imbalance", "distance_matrix", 0.8);
        d.recommendation = Some("use schedule(dynamic,1)".to_string());
        let plan = ingest(&mut model, &[d]);
        assert!(model.parallel_weight > 1.7);
        assert_eq!(plan.suggestions[0].action, "use schedule(dynamic,1)");
    }

    #[test]
    fn multiple_diagnoses_compound() {
        let mut model = CostModel::default();
        ingest(
            &mut model,
            &[
                diag("memory-locality", "a", 0.5),
                diag("memory-locality", "b", 0.5),
            ],
        );
        assert!((model.cache_weight - 2.25).abs() < 1e-9);
    }

    #[test]
    fn severity_is_clamped() {
        let mut model = CostModel::default();
        ingest(&mut model, &[diag("stalls", "x", 99.0)]);
        assert!((model.processor_weight - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_category_keeps_recommendation_only() {
        let mut model = CostModel::default();
        let mut d = diag("exotic", "x", 0.4);
        let silent = ingest(&mut model, std::slice::from_ref(&d));
        assert!(silent.suggestions.is_empty());
        d.recommendation = Some("do the thing".to_string());
        let kept = ingest(&mut model, &[d]);
        assert_eq!(kept.suggestions.len(), 1);
        assert_eq!(kept.suggestions[0].action, "do the thing");
        // Weights untouched either way.
        assert_eq!(model.cache_weight, 1.0);
    }

    #[test]
    fn priority_level_mapping_matches_paper() {
        use crate::optimize::OptLevel;
        assert_eq!(
            level_for_priority(OptimizationPriority::LowPower),
            OptLevel::O0
        );
        assert_eq!(
            level_for_priority(OptimizationPriority::LowEnergy),
            OptLevel::O3
        );
        assert_eq!(
            level_for_priority(OptimizationPriority::PipelineStalls),
            OptLevel::O2
        );
    }

    #[test]
    fn serial_bottleneck_suggests_parallelization() {
        let mut model = CostModel::default();
        let plan = ingest(
            &mut model,
            &[diag("serial-bottleneck", "exchange_var", 0.31)],
        );
        assert!(plan.suggestions[0].action.contains("parallelize"));
    }
}
