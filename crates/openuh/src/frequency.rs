//! Frequency-based feedback optimisation.
//!
//! The paper: "The compiler currently supports feedback for branch,
//! loop, and control flow optimizations, and callsite counts to improve
//! inlining. All these optimizations are frequency-based and this work
//! is being done as an initial step towards providing feedback to the
//! internal cost-models of the compiler."
//!
//! This module implements that step: measured invocation counts from a
//! profile replace the compiler's static estimates, and the classic
//! frequency-driven decisions are derived — inlining of hot small
//! callsites, unroll-worthy hot loops, and branch-layout hints.

use crate::ir::{Program, RegionId, RegionKind};
use perfdmf::Trial;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Measured execution frequencies, keyed by region name.
///
/// Built from a trial's `calls` column: the event's leaf name must match
/// the region name (the mapping identifier the compiler instrumentation
/// retains).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrequencyProfile {
    counts: BTreeMap<String, f64>,
}

impl FrequencyProfile {
    /// Extracts per-region call counts from a trial (summed across
    /// threads, using the `TIME` metric's calls column — TAU stores the
    /// same call count on every metric).
    pub fn from_trial(trial: &Trial) -> Self {
        let mut counts = BTreeMap::new();
        let p = &trial.profile;
        let Some(metric) = p
            .metric_id("TIME")
            .or_else(|| p.metrics().first().and_then(|m| p.metric_id(&m.name)))
        else {
            return FrequencyProfile::default();
        };
        for event in p.events() {
            let id = p.event_id(&event.name).expect("iterating events");
            let calls: f64 = p.across_threads(id, metric).iter().map(|m| m.calls).sum();
            // Leaf name is the compiler's mapping identifier.
            let leaf = event.leaf().to_string();
            *counts.entry(leaf).or_insert(0.0) += calls;
        }
        FrequencyProfile { counts }
    }

    /// Builds a profile from explicit counts (tests, external tools).
    pub fn from_counts(counts: impl IntoIterator<Item = (String, f64)>) -> Self {
        FrequencyProfile {
            counts: counts.into_iter().collect(),
        }
    }

    /// Measured count for a region name.
    pub fn count(&self, region: &str) -> Option<f64> {
        self.counts.get(region).copied()
    }

    /// Number of regions with measurements.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// A frequency-driven optimisation decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrequencyDecision {
    /// Inline this callsite: hot and small enough.
    Inline {
        /// Callsite region name.
        callsite: String,
        /// Measured invocation count.
        count: f64,
    },
    /// Unroll / software-pipeline this loop: hot with a stable trip count.
    UnrollLoop {
        /// Loop region name.
        name: String,
        /// Measured invocation count.
        count: f64,
    },
    /// Lay out this branch for the hot path.
    BranchLayout {
        /// Branch region name.
        name: String,
        /// Fraction of parent executions that took this arm.
        taken_fraction: f64,
    },
    /// A static invocation estimate was corrected by measurement.
    CorrectedEstimate {
        /// Region name.
        name: String,
        /// The compiler's prior static estimate.
        was: f64,
        /// The measured count.
        now: f64,
    },
}

/// Thresholds for the frequency decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyConfig {
    /// Minimum callsite count for inlining.
    pub inline_min_calls: f64,
    /// Maximum callee size (instructions) for inlining.
    pub inline_max_instructions: f64,
    /// Minimum loop invocation count for unrolling.
    pub unroll_min_calls: f64,
    /// Minimum taken fraction for branch layout.
    pub branch_min_fraction: f64,
}

impl Default for FrequencyConfig {
    fn default() -> Self {
        FrequencyConfig {
            inline_min_calls: 10_000.0,
            inline_max_instructions: 200.0,
            unroll_min_calls: 1_000.0,
            branch_min_fraction: 0.8,
        }
    }
}

/// Applies measured frequencies to a program: corrects each region's
/// `invocations` estimate in place and returns the decision list.
pub fn apply(
    program: &mut Program,
    profile: &FrequencyProfile,
    config: &FrequencyConfig,
) -> Vec<FrequencyDecision> {
    let mut decisions = Vec::new();
    let ids: Vec<RegionId> = program.all().collect();
    for id in ids {
        let (name, kind, static_estimate, instructions, parent) = {
            let r = program.region(id);
            (
                r.name.clone(),
                r.kind,
                r.attrs.invocations,
                r.attrs.instructions,
                r.parent,
            )
        };
        let Some(measured) = profile.count(&name) else {
            continue;
        };
        if (measured - static_estimate).abs() > static_estimate.max(1.0) * 0.01 {
            decisions.push(FrequencyDecision::CorrectedEstimate {
                name: name.clone(),
                was: static_estimate,
                now: measured,
            });
            program.region_mut(id).attrs.invocations = measured;
        }
        match kind {
            RegionKind::Callsite => {
                if measured >= config.inline_min_calls
                    && instructions <= config.inline_max_instructions
                {
                    decisions.push(FrequencyDecision::Inline {
                        callsite: name.clone(),
                        count: measured,
                    });
                }
            }
            RegionKind::Loop => {
                if measured >= config.unroll_min_calls {
                    decisions.push(FrequencyDecision::UnrollLoop {
                        name: name.clone(),
                        count: measured,
                    });
                }
            }
            RegionKind::Branch => {
                // Taken fraction relative to the parent's measured count.
                let parent_count = parent
                    .map(|p| program.region(p).attrs.invocations)
                    .unwrap_or(measured)
                    .max(1.0);
                let fraction = (measured / parent_count).clamp(0.0, 1.0);
                if fraction >= config.branch_min_fraction {
                    decisions.push(FrequencyDecision::BranchLayout {
                        name: name.clone(),
                        taken_fraction: fraction,
                    });
                }
            }
            RegionKind::Procedure => {}
        }
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::RegionAttrs;
    use perfdmf::{Measurement, TrialBuilder};

    fn program() -> Program {
        let mut p = Program::new();
        let main = p.add_procedure(
            "main",
            RegionAttrs {
                invocations: 1.0,
                ..Default::default()
            },
        );
        p.add_child(
            main,
            "hot_call",
            RegionKind::Callsite,
            RegionAttrs {
                instructions: 50.0,
                invocations: 100.0, // static guess, wrong
                ..Default::default()
            },
        );
        p.add_child(
            main,
            "big_call",
            RegionKind::Callsite,
            RegionAttrs {
                instructions: 5_000.0,
                invocations: 100.0,
                ..Default::default()
            },
        );
        p.add_child(
            main,
            "hot_loop",
            RegionKind::Loop,
            RegionAttrs {
                invocations: 10.0,
                ..Default::default()
            },
        );
        let b = p.add_child(
            main,
            "branch_arm",
            RegionKind::Branch,
            RegionAttrs {
                invocations: 1.0,
                ..Default::default()
            },
        );
        let _ = b;
        p
    }

    fn profile() -> FrequencyProfile {
        FrequencyProfile::from_counts([
            ("main".to_string(), 1.0),
            ("hot_call".to_string(), 50_000.0),
            ("big_call".to_string(), 50_000.0),
            ("hot_loop".to_string(), 2_000.0),
            ("branch_arm".to_string(), 0.9),
        ])
    }

    #[test]
    fn inlines_hot_small_callsites_only() {
        let mut p = program();
        let decisions = apply(&mut p, &profile(), &FrequencyConfig::default());
        assert!(decisions.iter().any(|d| matches!(
            d,
            FrequencyDecision::Inline { callsite, .. } if callsite == "hot_call"
        )));
        // The big callee is hot but too large.
        assert!(!decisions.iter().any(|d| matches!(
            d,
            FrequencyDecision::Inline { callsite, .. } if callsite == "big_call"
        )));
    }

    #[test]
    fn corrects_static_estimates_in_place() {
        let mut p = program();
        let decisions = apply(&mut p, &profile(), &FrequencyConfig::default());
        let hot = p.find("hot_call").unwrap();
        assert_eq!(p.region(hot).attrs.invocations, 50_000.0);
        assert!(decisions.iter().any(|d| matches!(
            d,
            FrequencyDecision::CorrectedEstimate { name, was, now }
                if name == "hot_call" && *was == 100.0 && *now == 50_000.0
        )));
    }

    #[test]
    fn unrolls_hot_loops() {
        let mut p = program();
        let decisions = apply(&mut p, &profile(), &FrequencyConfig::default());
        assert!(decisions.iter().any(|d| matches!(
            d,
            FrequencyDecision::UnrollLoop { name, count } if name == "hot_loop" && *count == 2_000.0
        )));
    }

    #[test]
    fn branch_layout_uses_parent_relative_fraction() {
        let mut p = program();
        let decisions = apply(&mut p, &profile(), &FrequencyConfig::default());
        let layout = decisions.iter().find_map(|d| match d {
            FrequencyDecision::BranchLayout {
                name,
                taken_fraction,
            } if name == "branch_arm" => Some(*taken_fraction),
            _ => None,
        });
        assert_eq!(layout, Some(0.9));
    }

    #[test]
    fn unmeasured_regions_are_untouched() {
        let mut p = program();
        let sparse = FrequencyProfile::from_counts([("hot_loop".to_string(), 5_000.0)]);
        apply(&mut p, &sparse, &FrequencyConfig::default());
        let hc = p.find("hot_call").unwrap();
        assert_eq!(
            p.region(hc).attrs.invocations,
            100.0,
            "unmeasured untouched"
        );
    }

    #[test]
    fn profile_from_trial_uses_calls_and_leaf_names() {
        let mut b = TrialBuilder::with_flat_threads("t", 2);
        let time = b.metric("TIME");
        let main = b.event("main");
        let call = b.event("main => hot_call");
        for t in 0..2 {
            b.set(
                main,
                time,
                t,
                Measurement {
                    inclusive: 1.0,
                    exclusive: 0.5,
                    calls: 1.0,
                    subcalls: 9.0,
                },
            );
            b.set(
                call,
                time,
                t,
                Measurement {
                    inclusive: 0.5,
                    exclusive: 0.5,
                    calls: 25_000.0,
                    subcalls: 0.0,
                },
            );
        }
        let profile = FrequencyProfile::from_trial(&b.build());
        assert_eq!(profile.count("hot_call"), Some(50_000.0)); // summed threads
        assert_eq!(profile.count("main"), Some(2.0));
        assert_eq!(profile.count("nope"), None);
        assert!(!profile.is_empty());
        assert_eq!(profile.len(), 2);
    }

    #[test]
    fn empty_trial_yields_empty_profile() {
        let b = TrialBuilder::with_flat_threads("t", 1);
        let profile = FrequencyProfile::from_trial(&b.build());
        assert!(profile.is_empty());
    }
}
